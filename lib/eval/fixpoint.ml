open Coral_term
open Coral_lang
open Coral_rel
open Module_struct

exception Not_modularly_stratified of string

(* ------------------------------------------------------------------ *)
(* Cooperative cancellation                                           *)
(* ------------------------------------------------------------------ *)

exception Cancelled

(* The check is installed per fixpoint instance (see [set_cancel_check]
   below): two instances evaluating in an interleaved fashion — lazy
   evaluation, nested module calls — each poll their own check with
   their own tick budget, so one instance's deadline never leaks into
   another's evaluation. *)
let tick_interval = 2048

(* ------------------------------------------------------------------ *)
(* Ordered-Search context                                             *)
(* ------------------------------------------------------------------ *)

type goal = {
  gslot : int;
  gtuple : Tuple.t;
  mutable gstate : [ `Pending | `Available | `Done ];
  mutable gdeps : goal list;  (* subgoals this goal's evaluation generated *)
  mutable gindex : int;  (* scratch for the SCC computation *)
  mutable glow : int;
  mutable gonstack : bool;
}

type t = {
  ms : Module_struct.t;
  mode : Ast.fixpoint;
  os : bool;
  monotonic : bool;  (* no negation, no aggregation: incremental re-open is sound *)
  profile : bool;  (* fill per-rule profiles and step deltas (explain analyze) *)
  mutable phase : int;
  mutable activated : bool;
  mutable complete : bool;
  mutable nrounds : int;
  mutable seed_inserts : int;  (* local inserts made by add_seed, not rules *)
  mutable done_inserts : int;  (* done# facts issued by the OS context *)
  mutable step_deltas : int list;  (* per productive step, newest first *)
  mutable extra_inserts : int;  (* direct impl inserts (OS availability) *)
  mutable pending : goal list;  (* not yet made available, newest first *)
  mutable live_goals : goal list;  (* every non-Done goal *)
  mutable cur_generator : goal option;  (* generator of the magic fact being inserted *)
  goal_tables : (int, goal list ref) Hashtbl.t array;  (* per magic slot, by tuple hash *)
  done_slot : int array;  (* per slot: done relation slot or -1 *)
  mutable answer_cursor : int;
  mutable seeds : Tuple.t list;  (* every seed ever added (for re-opens) *)
  mutable cancel : (unit -> bool) option;  (* cooperative cancellation check *)
  mutable budget : int;  (* ticks until the next cancel consult *)
  mutable progress : (rounds:int -> delta:int -> lanes:int array -> unit) option;
      (* live-progress hook, invoked once per productive step (see
         [step]) and from the tick seam when a large round has
         accumulated unreported derivations; lanes are per-worker task
         counts, [||] sequential *)
  mutable reported_inserts : int;
      (* inserts already published through [progress]: mid-round and
         round-end publications share one cursor so deltas never
         double-count *)
  pool : Par_pool.t option;  (* shared domain pool when workers > 1 *)
  backjump : bool;  (* intelligent backtracking (bench ablation E16) *)
  par : bool;  (* module passed the parallel-safety gate *)
  trace : bool;
  prov : (int, (Tuple.t * int * string * (int * Tuple.t) list) list ref) Hashtbl.t;
      (* head tuple hash -> (tuple, head slot, rule text,
         (body relation slot, witness tuple) list): first derivation of
         each fact, for the explanation tool *)
}

let set_cancel_check t check =
  t.cancel <- check;
  t.budget <- tick_interval

let set_progress t hook = t.progress <- hook

let total_inserts t =
  let sum = ref t.extra_inserts in
  Array.iteri
    (fun s r -> if t.ms.local.(s) then sum := !sum + r.Relation.stats.Relation.inserts)
    t.ms.rels;
  !sum

(* Publish any unreported derivations through the progress hook.  Both
   the round-end publication in [step] and the mid-round one in [tick]
   go through here, so a consumer accumulating deltas sees each insert
   exactly once. *)
let publish_progress t =
  match t.progress with
  | None -> ()
  | Some hook ->
    let total = total_inserts t in
    let delta = total - t.reported_inserts in
    if delta > 0 then begin
      t.reported_inserts <- total;
      let lanes =
        match t.pool with
        | Some pool when t.par ->
          Array.init (Par_pool.workers pool) (Par_pool.lane_tasks pool)
        | _ -> [||]
      in
      hook ~rounds:t.nrounds ~delta ~lanes
    end

(* Polled at round boundaries: always consults the check. *)
let poll t =
  match t.cancel with
  | Some check when check () -> raise Cancelled
  | _ -> ()

(* Counted per derivation attempt: consults the check (typically a
   clock read) only every [tick_interval] ticks, so the overhead inside
   a large round stays negligible.  Progress is published before the
   consult so a check that reads accumulated derivations — the
   per-query resource budget — observes counts at tick granularity,
   not just at round barriers. *)
let tick t =
  match t.cancel with
  | None -> ()
  | Some check ->
    t.budget <- t.budget - 1;
    if t.budget <= 0 then begin
      t.budget <- tick_interval;
      publish_progress t;
      if check () then raise Cancelled
    end

let is_magic_slot ms s =
  ms.local.(s) && String.length ms.rels.(s).Relation.name > 2
  && String.sub ms.rels.(s).Relation.name 0 2 = "m#"

let find_goal tbl (tuple : Tuple.t) =
  match Hashtbl.find_opt tbl tuple.Tuple.hash with
  | Some bucket -> List.find_opt (fun g -> Tuple.equal g.gtuple tuple) !bucket
  | None -> None

let record_goal tbl (g : goal) =
  match Hashtbl.find_opt tbl g.gtuple.Tuple.hash with
  | Some bucket -> bucket := g :: !bucket
  | None -> Hashtbl.add tbl g.gtuple.Tuple.hash (ref [ g ])

(* Route a subgoal through the context.  Every derivation of a magic
   fact records a dependency edge generator -> subgoal, including
   re-derivations of goals already in the context: a goal's done fact
   may be issued only when everything reachable from it has been fully
   evaluated, and the sink-SCC pop below enforces exactly that. *)
let offer_goal t slot (tuple : Tuple.t) =
  let tbl = t.goal_tables.(slot) in
  let g =
    match find_goal tbl tuple with
    | Some g -> g
    | None ->
      let g =
        { gslot = slot;
          gtuple = tuple;
          gstate = `Pending;
          gdeps = [];
          gindex = -1;
          glow = -1;
          gonstack = false
        }
      in
      record_goal tbl g;
      t.pending <- g :: t.pending;
      t.live_goals <- g :: t.live_goals;
      g
  in
  match t.cur_generator with
  | Some parent when parent != g && not (List.memq g parent.gdeps) ->
    parent.gdeps <- g :: parent.gdeps
  | _ -> ()

(* Parallel-safety gate: a semi-naive version may run striped across
   domains only when every relation it reads supports concurrent
   snapshot scans and its head insertions are plain deduplicated
   inserts (no admission hook, no multiset, no foreign predicates whose
   solvers may carry hidden state).  Profiled/traced runs mutate shared
   per-rule records on match, so they stay sequential. *)
let par_safe_version ms ((rule : crule), _) =
  let head = ms.Module_struct.rels.(rule.head_slot) in
  head.Relation.scan_safe
  && Option.is_none head.Relation.admit
  && (not head.Relation.multiset)
  && Array.for_all
       (function
         | Scan { slot; _ } | Negcheck { slot; _ } ->
           ms.Module_struct.rels.(slot).Relation.scan_safe
         | Compare _ | Assign _ -> true
         | Foreign _ | Negforeign _ -> false)
       rule.body

let create ?(trace = false) ?(profile = false) ?(workers = 1) ?(backjump = true)
    (ms : Module_struct.t) =
  let nslots = Array.length ms.rels in
  let os = ms.plan.Coral_rewrite.Optimizer.ordered_search in
  let monotonic =
    Array.for_all
      (fun stratum ->
        stratum.agg_rules = []
        && List.for_all
             (fun c ->
               Array.for_all
                 (function Negcheck _ | Negforeign _ -> false | _ -> true)
                 c.body)
             (stratum.srules @ List.map fst stratum.versions))
      ms.strata
  in
  let done_slot =
    Array.init nslots (fun s ->
        if is_magic_slot ms s then begin
          let name = ms.rels.(s).Relation.name in
          let done_pred = Symbol.intern ("done#" ^ String.sub name 2 (String.length name - 2)) in
          Option.value ~default:(-1) (Module_struct.slot ms done_pred)
        end
        else -1)
  in
  (* compiled modules are cached and reused across queries, so a
     profiled run starts from clean per-rule counters *)
  if profile then List.iter (fun (c : crule) -> reset_prof c.prof) (Module_struct.all_rules ms);
  let pool = if workers > 1 then Par_pool.shared ~workers else None in
  let par =
    Option.is_some pool && (not os) && (not trace) && (not profile)
    && ms.plan.Coral_rewrite.Optimizer.fixpoint = Ast.Basic_seminaive
    && Array.for_all
         (fun stratum -> List.for_all (par_safe_version ms) stratum.versions)
         ms.strata
  in
  let t =
    { ms;
      mode = ms.plan.Coral_rewrite.Optimizer.fixpoint;
      os;
      monotonic;
      profile;
      phase = 0;
      activated = false;
      complete = false;
      nrounds = 0;
      seed_inserts = 0;
      done_inserts = 0;
      step_deltas = [];
      extra_inserts = 0;
      pending = [];
      live_goals = [];
      cur_generator = None;
      goal_tables = Array.init nslots (fun _ -> Hashtbl.create 32);
      done_slot;
      answer_cursor = 0;
      seeds = [];
      cancel = None;
      budget = tick_interval;
      progress = None;
      reported_inserts = 0;
      pool;
      backjump;
      par;
      trace;
      prov = Hashtbl.create (if trace then 256 else 1)
    }
  in
  (* Ordered Search: magic facts are routed through the context — the
     admission hook hides them; they enter their relation only when the
     context makes them available. *)
  if os then
    Array.iteri
      (fun s rel ->
        if is_magic_slot ms s then begin
          let prev = rel.Relation.admit in
          rel.Relation.admit <-
            Some
              (fun r tuple ->
                (match prev with Some earlier -> ignore (earlier r tuple) | None -> ());
                offer_goal t s tuple;
                false)
        end)
      ms.rels;
  t

let record_prov t (rule : crule) tuple positioned =
  (* map body positions to relation slots (-1: builtin rows) *)
  let witnesses =
    List.map
      (fun (i, tu) ->
        (match rule.body.(i) with
        | Scan { slot; _ } -> slot
        | Foreign _ | Negcheck _ | Negforeign _ | Compare _ | Assign _ -> -1), tu)
      positioned
  in
  let bucket =
    match Hashtbl.find_opt t.prov tuple.Tuple.hash with
    | Some b -> b
    | None ->
      let b = ref [] in
      Hashtbl.add t.prov tuple.Tuple.hash b;
      b
  in
  bucket := (tuple, rule.head_slot, rule.text, witnesses) :: !bucket

let provenance t (tuple : Tuple.t) ~slot =
  match Hashtbl.find_opt t.prov tuple.Tuple.hash with
  | Some bucket ->
    List.find_opt (fun (ex, s, _, _) -> s = slot && Tuple.equal ex tuple) (List.rev !bucket)
    |> Option.map (fun (_, _, text, ws) -> text, ws)
  | None -> None

(* one rule application, inserting plain head tuples; under Ordered
   Search, rules deriving magic facts run with witness tracking so the
   generating subgoal (the magic literal's tuple) is known when the
   admission hook routes the new subgoal through the context *)
let note_insert t (rule : crule) inserted =
  if t.profile then begin
    let p = rule.prof in
    if inserted then p.rp_derived <- p.rp_derived + 1 else p.rp_dups <- p.rp_dups + 1
  end

let apply_rule t range (rule : crule) =
  let os_magic_head = t.os && is_magic_slot t.ms rule.head_slot in
  let prof = if t.profile then Some rule.prof else None in
  let t0 = if t.profile then Coral_obs.Obs.now_ns () else 0 in
  Coral_obs.Obs.Span.with_ "fixpoint.join"
    ~attrs:(fun () -> [ "head", t.ms.rels.(rule.head_slot).Relation.name ])
    (fun () ->
      if t.trace || os_magic_head then begin
        let witness = ref [] in
        Joiner.run ~rels:t.ms.rels ~range ~backjump:t.backjump ~witness ?prof rule
          ~on_match:(fun env ->
            tick t;
            let tuple = Joiner.head_tuple rule env in
            if os_magic_head then begin
              t.cur_generator <-
                List.find_map
                  (fun (pos, (wt : Tuple.t)) ->
                    match rule.body.(pos) with
                    | Scan { slot; _ } when is_magic_slot t.ms slot ->
                      find_goal t.goal_tables.(slot) wt
                    | _ -> None)
                  !witness
            end;
            let inserted = Relation.insert t.ms.rels.(rule.head_slot) tuple in
            t.cur_generator <- None;
            note_insert t rule inserted;
            if inserted && t.trace then record_prov t rule tuple !witness)
      end
      else
        Joiner.run ~rels:t.ms.rels ~range ~backjump:t.backjump ?prof rule
          ~on_match:(fun env ->
            tick t;
            note_insert t rule
              (Relation.insert t.ms.rels.(rule.head_slot) (Joiner.head_tuple rule env))));
  if t.profile then
    rule.prof.rp_time_ns <- rule.prof.rp_time_ns + (Coral_obs.Obs.now_ns () - t0)

let full_range ~op_index:_ ~slot:_ ~local:_ = 0, -1

let eval_agg_rule t (rule : crule) =
  let rows = ref [] in
  let key_of row = Array.of_list (List.map (fun i -> row.(i)) rule.plain_positions) in
  let prof = if t.profile then Some rule.prof else None in
  let t0 = if t.profile then Coral_obs.Obs.now_ns () else 0 in
  (* under tracing, remember the contributing body facts per group *)
  let group_witnesses : (int * Tuple.t) list Term.ArrayTbl.t =
    Term.ArrayTbl.create (if t.trace then 32 else 1)
  in
  if t.trace then begin
    let witness = ref [] in
    Joiner.run ~rels:t.ms.rels ~range:full_range ~backjump:t.backjump ~witness ?prof rule
      ~on_match:(fun env ->
        let row = Joiner.head_row rule env in
        rows := row :: !rows;
        let key = key_of row in
        let prev =
          Option.value ~default:[] (Term.ArrayTbl.find_opt group_witnesses key)
        in
        Term.ArrayTbl.replace group_witnesses key (!witness @ prev))
  end
  else
    Joiner.run ~rels:t.ms.rels ~range:full_range ~backjump:t.backjump ?prof rule
      ~on_match:(fun env ->
        tick t;
        rows := Joiner.head_row rule env :: !rows);
  let grouped =
    Aggregates.group ~plain_positions:rule.plain_positions ~agg_positions:rule.agg_positions
      ~arity:(Array.length rule.head_args)
      (List.to_seq !rows)
  in
  List.iter
    (fun row ->
      let tuple = Tuple.of_terms row in
      let inserted = Relation.insert t.ms.rels.(rule.head_slot) tuple in
      note_insert t rule inserted;
      if inserted && t.trace then begin
        let witnesses =
          Option.value ~default:[] (Term.ArrayTbl.find_opt group_witnesses (key_of row))
        in
        record_prov t rule tuple witnesses
      end)
    grouped;
  if t.profile then
    rule.prof.rp_time_ns <- rule.prof.rp_time_ns + (Coral_obs.Obs.now_ns () - t0)

let slot_of_op (rule : crule) i =
  match rule.body.(i) with
  | Scan { slot; _ } -> slot
  | Negcheck _ | Foreign _ | Negforeign _ | Compare _ | Assign _ -> assert false

(* Semi-naive mark interval for one version against a common round
   snapshot: the delta op reads [cursor, snapshot), earlier ops read
   everything up to the snapshot, later ops everything up to their own
   cursor — the standard triangular decomposition. *)
let bsn_range (rule : crule) d msnap ~op_index ~slot ~local =
  if not local then 0, -1
  else if op_index = d then rule.cursors.(d), msnap.(slot)
  else if op_index < d then 0, msnap.(slot)
  else 0, rule.cursors.(op_index)

let mark_snapshot t =
  Array.mapi (fun s rel -> if t.ms.local.(s) then Relation.mark rel else -1) t.ms.rels

(* One BSN round over the given semi-naive versions: seal all local
   relations, run every version against the common mark snapshot, then
   advance the consumed cursors. *)
let round_bsn_seq t versions =
  let msnap = mark_snapshot t in
  List.iter
    (fun ((rule : crule), d) -> apply_rule t (bsn_range rule d msnap) rule)
    versions;
  List.iter
    (fun ((rule : crule), d) -> rule.cursors.(d) <- msnap.(slot_of_op rule d))
    versions

(* ------------------------------------------------------------------ *)
(* Round-synchronous parallel BSN round (DESIGN.md section 9)          *)
(* ------------------------------------------------------------------ *)

let m_par_rounds = Coral_obs.Obs.counter "eval.parallel.rounds"
let m_par_fallback = Coral_obs.Obs.counter "eval.parallel.fallback_rounds"
let m_par_tasks = Coral_obs.Obs.counter "eval.parallel.tasks"
let m_par_merged = Coral_obs.Obs.counter "eval.parallel.merged"
let m_par_dups = Coral_obs.Obs.counter "eval.parallel.duplicates"
let m_par_workers = Coral_obs.Obs.gauge "eval.parallel.workers"

(* Three phases, with a barrier after each:

   1. Apply: tasks = versions x lanes.  Each task runs one rule version
      against the same mark snapshot a sequential round would use, but
      over a disjoint stripe of the version's delta scan, buffering
      head tuples privately — no relation is mutated while any domain
      is scanning, which is what makes the concurrent scans safe.
   2. Dedup (parallel, hash-partitioned): partition [p] owns the
      buffered tuples with [hash mod lanes = p] and drops those already
      stored ([Relation.mem], read-only) or already produced at an
      earlier deterministic position (task-major order) of the same
      partition.  Equal tuples hash equally, so they always land in the
      same partition and exact duplicates are eliminated here.
   3. Insert (sequential, task-major order): survivors go through the
      ordinary [Relation.insert], which re-checks duplicates — catching
      the residual cross-partition case (non-ground subsumption between
      tuples with different hashes) — and keeps insert order, and hence
      relation contents, deterministic.

   Cursors advance only after phase 3, so the next round's delta is
   exactly this round's new facts: the semi-naive marks mean the same
   thing they mean in a sequential round. *)
let round_bsn_par t pool versions =
  let lanes = Par_pool.workers pool in
  let varr = Array.of_list versions in
  let nver = Array.length varr in
  let nslots = Array.length t.ms.rels in
  let msnap = mark_snapshot t in
  let ntasks = nver * lanes in
  let buffers = Array.make ntasks [||] in
  let counts = Array.init ntasks (fun _ -> Array.make nslots 0) in
  let lane_before = Array.init lanes (Par_pool.lane_tasks pool) in
  let apply ~lane:_ ~task =
    let rule, d = varr.(task / lanes) in
    let stripe_lane = task mod lanes in
    let buf = ref [] in
    (* task-local cancellation budget: workers poll the instance's
       check without sharing a countdown cell *)
    let budget = ref tick_interval in
    Joiner.run ~rels:t.ms.rels ~range:(bsn_range rule d msnap) ~backjump:t.backjump
      ~stripe:(d, stripe_lane, lanes) ~scan_counts:counts.(task) rule
      ~on_match:(fun env ->
        (match t.cancel with
        | None -> ()
        | Some check ->
          decr budget;
          if !budget <= 0 then begin
            budget := tick_interval;
            if check () then raise Cancelled
          end);
        buf := Joiner.head_tuple rule env :: !buf);
    buffers.(task) <- Array.of_list (List.rev !buf)
  in
  Par_pool.run_or_seq pool ~ntasks apply;
  (* Phase 2 *)
  let keep = Array.map (fun b -> Array.make (Array.length b) true) buffers in
  let drops = Array.init lanes (fun _ -> Array.make nslots 0) in
  let dedup ~lane:_ ~task:p =
    let seen : (int, (int * Tuple.t) list ref) Hashtbl.t = Hashtbl.create 64 in
    for task = 0 to ntasks - 1 do
      let rule, _ = varr.(task / lanes) in
      let slot = rule.head_slot in
      let rel = t.ms.rels.(slot) in
      let buf = buffers.(task) in
      for i = 0 to Array.length buf - 1 do
        let tuple = buf.(i) in
        let h = tuple.Tuple.hash land max_int in
        if h mod lanes = p then begin
          let dup =
            Relation.mem rel tuple
            ||
            match Hashtbl.find_opt seen h with
            | Some bucket ->
              List.exists (fun (s, ex) -> s = slot && Tuple.equal ex tuple) !bucket
            | None -> false
          in
          if dup then begin
            keep.(task).(i) <- false;
            drops.(p).(slot) <- drops.(p).(slot) + 1
          end
          else begin
            match Hashtbl.find_opt seen h with
            | Some bucket -> bucket := (slot, tuple) :: !bucket
            | None -> Hashtbl.add seen h (ref [ slot, tuple ])
          end
        end
      done
    done
  in
  Par_pool.run_or_seq pool ~ntasks:lanes dedup;
  (* Phase 3 *)
  let merged = ref 0 in
  for task = 0 to ntasks - 1 do
    let rule, _ = varr.(task / lanes) in
    let rel = t.ms.rels.(rule.head_slot) in
    let buf = buffers.(task) in
    for i = 0 to Array.length buf - 1 do
      if keep.(task).(i) && Relation.insert rel buf.(i) then incr merged
    done
  done;
  (* flush worker-side stats so counters match a sequential run's
     accounting discipline (scans opened, duplicates rejected) *)
  for task = 0 to ntasks - 1 do
    let c = counts.(task) in
    for s = 0 to nslots - 1 do
      if c.(s) > 0 then Relation.note_scans t.ms.rels.(s) c.(s)
    done
  done;
  let dropped = ref 0 in
  for p = 0 to lanes - 1 do
    for s = 0 to nslots - 1 do
      if drops.(p).(s) > 0 then begin
        Relation.note_duplicates t.ms.rels.(s) drops.(p).(s);
        dropped := !dropped + drops.(p).(s)
      end
    done
  done;
  List.iter
    (fun ((rule : crule), d) -> rule.cursors.(d) <- msnap.(slot_of_op rule d))
    versions;
  let open Coral_obs in
  Obs.Counter.incr m_par_rounds;
  Obs.Counter.add m_par_tasks ntasks;
  Obs.Counter.add m_par_merged !merged;
  Obs.Counter.add m_par_dups !dropped;
  Obs.Gauge.set m_par_workers lanes;
  for lane = 0 to lanes - 1 do
    let delta = Par_pool.lane_tasks pool lane - lane_before.(lane) in
    if delta > 0 then
      Obs.Counter.add
        (Obs.counter (Printf.sprintf "eval.parallel.worker.%d.tasks" lane))
        delta
  done

let round_bsn t versions =
  t.nrounds <- t.nrounds + 1;
  if t.par && versions <> [] then begin
    match t.pool with
    | Some pool when not (Par_pool.busy pool) -> round_bsn_par t pool versions
    | Some _ | None ->
      (* pool in use by an enclosing evaluation (nested module call) or
         dead: the round still completes, sequentially *)
      Coral_obs.Obs.Counter.incr m_par_fallback;
      round_bsn_seq t versions
  end
  else round_bsn_seq t versions

(* One PSN round: rule-at-a-time deltas — each version seals its delta
   relation just before running and consumes up to that point; facts
   derived by earlier versions in the same round are visible
   immediately through the open-interval ranges. *)
let round_psn t versions =
  t.nrounds <- t.nrounds + 1;
  List.iter
    (fun ((rule : crule), d) ->
      let dslot = slot_of_op rule d in
      let m = Relation.mark t.ms.rels.(dslot) in
      let range ~op_index ~slot ~local =
        ignore slot;
        if not local then 0, -1
        else if op_index = d then rule.cursors.(d), m
        else if op_index < d then 0, -1
        else 0, rule.cursors.(op_index)
      in
      apply_rule t range rule;
      rule.cursors.(d) <- m)
    versions

let round_naive t strata_limit =
  t.nrounds <- t.nrounds + 1;
  for i = 0 to strata_limit do
    let st = t.ms.strata.(i) in
    let seen = ref [] in
    let once (rule : crule) =
      if not (List.memq rule !seen) then begin
        seen := rule :: !seen;
        apply_rule t full_range rule
      end
    in
    List.iter once st.srules;
    List.iter (fun (rule, _) -> once rule) st.versions
  done

let active_versions t =
  let acc = ref [] in
  for i = min t.phase (Array.length t.ms.strata - 1) downto 0 do
    acc := t.ms.strata.(i).versions @ !acc
  done;
  !acc

let activate_stratum t i =
  let st = t.ms.strata.(i) in
  List.iter (fun rule -> apply_rule t full_range rule) st.srules;
  List.iter (fun rule -> eval_agg_rule t rule) st.agg_rules

(* Ordered-Search context actions, taken at quiescence.

   While pending subgoals exist, make the most recent one available
   (depth-first exploration).  Once everything live is available and
   quiescent, pop the sink strongly connected components of the subgoal
   dependency graph: an SCC whose every edge stays inside it or leads
   to done goals has complete answers (its guarded rules waited only on
   lower, already-done subgoals — the modular stratification
   assumption), so its done facts are issued together. *)
let pop_sink_sccs t =
  let live = List.filter (fun g -> g.gstate <> `Done) t.live_goals in
  t.live_goals <- live;
  if live = [] then false
  else begin
    (* Tarjan over the live subgoal graph *)
    List.iter
      (fun g ->
        g.gindex <- -1;
        g.glow <- -1;
        g.gonstack <- false)
      live;
    let counter = ref 0 in
    let stack = ref [] in
    let sccs = ref [] in
    let rec strongconnect g =
      g.gindex <- !counter;
      g.glow <- !counter;
      incr counter;
      stack := g :: !stack;
      g.gonstack <- true;
      List.iter
        (fun d ->
          if d.gstate <> `Done then begin
            if d.gindex < 0 then begin
              strongconnect d;
              if d.glow < g.glow then g.glow <- d.glow
            end
            else if d.gonstack && d.gindex < g.glow then g.glow <- d.gindex
          end)
        g.gdeps;
      if g.glow = g.gindex then begin
        let rec pop acc =
          match !stack with
          | d :: rest ->
            stack := rest;
            d.gonstack <- false;
            let acc = d :: acc in
            if d == g then acc else pop acc
          | [] -> acc
        in
        sccs := pop [] :: !sccs
      end
    in
    List.iter (fun g -> if g.gindex < 0 then strongconnect g) live;
    (* a sink SCC has no edge to a live goal outside itself *)
    let is_sink scc =
      List.for_all
        (fun g ->
          List.for_all (fun d -> d.gstate = `Done || List.memq d scc) g.gdeps)
        scc
    in
    let sinks = List.filter is_sink !sccs in
    assert (sinks <> []);
    List.iter
      (fun scc ->
        List.iter
          (fun g ->
            g.gstate <- `Done;
            let ds = t.done_slot.(g.gslot) in
            if ds >= 0 then begin
              let done_rel = t.ms.rels.(ds) in
              if Relation.insert done_rel (Tuple.of_terms g.gtuple.Tuple.terms) then
                t.done_inserts <- t.done_inserts + 1
            end)
          scc)
      sinks;
    t.live_goals <- List.filter (fun g -> g.gstate <> `Done) t.live_goals;
    true
  end

let context_action t =
  let rec next_pending = function
    | [] -> None
    | g :: rest ->
      if g.gstate = `Pending then begin
        t.pending <- rest;
        Some g
      end
      else next_pending rest
  in
  match next_pending t.pending with
  | Some g ->
    g.gstate <- `Available;
    let rel = t.ms.rels.(g.gslot) in
    if rel.Relation.impl.Relation.i_insert ~dedup:true g.gtuple then
      t.extra_inserts <- t.extra_inserts + 1;
    true
  | None -> pop_sink_sccs t

let nstrata t = Array.length t.ms.strata

let step_inner t =
  poll t;
  if t.complete then false
  else if t.os then begin
    (* single phase: all strata active, context drives ordering *)
    if not t.activated then begin
      t.activated <- true;
      for i = 0 to nstrata t - 1 do
        List.iter (fun rule -> apply_rule t full_range rule) t.ms.strata.(i).srules
      done;
      true
    end
    else begin
      let before = total_inserts t in
      let versions =
        Array.to_list t.ms.strata |> List.concat_map (fun st -> st.versions)
      in
      (* aggregate rules run before the plain round so that consumers
         (possibly negated, guarded by done facts popped just before
         this step) never observe an unfilled aggregate relation *)
      Array.iter (fun st -> List.iter (eval_agg_rule t) st.agg_rules) t.ms.strata;
      (match t.mode with
      | Ast.Predicate_seminaive -> round_psn t versions
      | Ast.Naive | Ast.Basic_seminaive | Ast.Ordered_search -> round_bsn t versions);
      if total_inserts t > before then true
      else if context_action t then true
      else begin
        t.complete <- true;
        false
      end
    end
  end
  else begin
    (* stratified phases *)
    if not t.activated then begin
      t.activated <- true;
      activate_stratum t t.phase;
      true
    end
    else begin
      let before = total_inserts t in
      (match t.mode with
      | Ast.Naive -> round_naive t t.phase
      | Ast.Predicate_seminaive -> round_psn t (active_versions t)
      | Ast.Basic_seminaive | Ast.Ordered_search -> round_bsn t (active_versions t));
      if total_inserts t > before then true
      else if t.phase < nstrata t - 1 then begin
        t.phase <- t.phase + 1;
        t.activated <- false;
        true
      end
      else begin
        t.complete <- true;
        false
      end
    end
  end

let step t =
  let want_delta = t.profile || Option.is_some t.progress in
  let before = if want_delta then total_inserts t else 0 in
  let progressed =
    Coral_obs.Obs.Span.with_ "fixpoint.iter"
      ~attrs:(fun () ->
        [ "round", string_of_int t.nrounds; "phase", string_of_int t.phase ])
      (fun () -> step_inner t)
  in
  if want_delta && progressed then begin
    if t.profile then t.step_deltas <- (total_inserts t - before) :: t.step_deltas;
    publish_progress t
  end;
  progressed

let run t =
  while step t do
    ()
  done

let reset_for_reopen t =
  (* Non-monotonic module re-opened with a new seed: clear local state
     and recompute from scratch (sound; the save-module incremental
     guarantee applies to monotonic modules). *)
  Array.iteri
    (fun s rel ->
      if t.ms.local.(s) then begin
        Relation.clear rel;
        rel.Relation.stats.Relation.inserts <- 0;
        rel.Relation.stats.Relation.duplicates <- 0
      end)
    t.ms.rels;
  Array.iter
    (fun st ->
      List.iter
        (fun ((rule : crule), d) -> rule.cursors.(d) <- 0)
        st.versions)
    t.ms.strata;
  Array.iter Hashtbl.reset t.goal_tables;
  t.pending <- [];
  t.live_goals <- [];
  t.cur_generator <- None;
  t.extra_inserts <- 0;
  t.seed_inserts <- 0;
  t.done_inserts <- 0;
  t.step_deltas <- [];
  (* insert stats were just zeroed; re-derived tuples are new work *)
  t.reported_inserts <- 0;
  t.answer_cursor <- 0;
  if t.profile then
    List.iter (fun (c : crule) -> reset_prof c.prof) (Module_struct.all_rules t.ms)

let add_seed t terms =
  let tuple = Tuple.of_terms terms in
  if t.ms.seed_slot < 0 then false
  else begin
    let rel = t.ms.rels.(t.ms.seed_slot) in
    if t.os then begin
      let fresh = find_goal t.goal_tables.(t.ms.seed_slot) tuple = None in
      if fresh then begin
        t.cur_generator <- None;
        offer_goal t t.ms.seed_slot tuple;
        if t.complete then t.complete <- false
      end;
      fresh
    end
    else begin
      let was_complete = t.complete in
      let fresh = Relation.insert rel tuple in
      if fresh then begin
        t.seed_inserts <- t.seed_inserts + 1;
        t.seeds <- tuple :: t.seeds;
        if was_complete && not t.monotonic then begin
          (* non-monotonic module: recompute from scratch with every
             seed seen so far (incremental continuation would leave
             stale negation/aggregation results behind) *)
          reset_for_reopen t;
          List.iter
            (fun old ->
              if Relation.insert rel old then t.seed_inserts <- t.seed_inserts + 1)
            t.seeds
        end;
        t.complete <- false;
        if was_complete then begin
          (* re-run phases so exit rules see the new seed *)
          t.phase <- 0;
          t.activated <- false
        end
      end;
      fresh
    end
  end

let answer_relation t = t.ms.rels.(t.ms.answer_slot)

let answers t ?pattern () =
  run t;
  Relation.scan (answer_relation t) ?pattern ()

let new_answers t ?pattern () =
  let rel = answer_relation t in
  let upto = Relation.mark rel in
  let from = t.answer_cursor in
  t.answer_cursor <- upto;
  Relation.scan rel ~from_mark:from ~to_mark:upto ?pattern ()

let rounds t = t.nrounds
let module_structure t = t.ms

(* ------------------------------------------------------------------ *)
(* Profiling accessors (populated when created with ~profile:true)    *)
(* ------------------------------------------------------------------ *)

(* Delta size of each productive step, oldest first (the first entry
   is the stratum activation, the rest are semi-naive rounds or
   Ordered-Search context actions). *)
let step_deltas t = List.rev t.step_deltas

let seed_inserts t = t.seed_inserts
let done_inserts t = t.done_inserts
let context_inserts t = t.extra_inserts

(* Inserts attributable to rule applications: everything local minus
   seeds, context availability inserts, and done facts.  When profiling
   is on this equals the sum of per-rule [rp_derived] — the two are
   computed along independent paths, which explain analyze exploits as
   a self-check. *)
let rule_derivations t =
  total_inserts t - t.extra_inserts - t.seed_inserts - t.done_inserts

let profiled_rules t = Module_struct.all_rules t.ms
