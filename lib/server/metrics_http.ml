(* A deliberately tiny HTTP/1.0-style listener for the Prometheus
   scrape endpoint.  One accept thread, one short-lived thread per
   connection; `/` and `/metrics` serve the metrics body (so both
   `curl host:port/` and a scraper's default path work), any other
   path gets a proper 404 response — never a silently closed socket.
   Every response carries Content-Length.  Not a general HTTP server:
   no keep-alive, no TLS. *)

type t = {
  fd : Unix.file_descr;
  bound_port : int;
  body : unit -> string;
  health : unit -> [ `Ok | `Degraded of string ];
  mutable closed : bool;
  mutable accept_thread : Thread.t option;
}

let read_request ic =
  (* Request line, then headers up to the blank line.  We only need
     the method for the 405 check; everything else is drained. *)
  match In_channel.input_line ic with
  | None -> None
  | Some request_line ->
    let rec drain () =
      match In_channel.input_line ic with
      | None -> ()
      | Some line -> if String.trim line = "" then () else drain ()
    in
    drain ();
    Some request_line

let respond oc ~status ~content_type body =
  let buf = Buffer.create (String.length body + 128) in
  Buffer.add_string buf (Printf.sprintf "HTTP/1.0 %s\r\n" status);
  Buffer.add_string buf (Printf.sprintf "Content-Type: %s\r\n" content_type);
  Buffer.add_string buf (Printf.sprintf "Content-Length: %d\r\n" (String.length body));
  Buffer.add_string buf "Connection: close\r\n\r\n";
  Buffer.add_string buf body;
  Out_channel.output_string oc (Buffer.contents buf);
  Out_channel.flush oc

let serve_connection t client =
  let ic = Unix.in_channel_of_descr client in
  let oc = Unix.out_channel_of_descr client in
  (try
     match read_request ic with
     | None -> ()
     | Some request_line ->
       let meth, path =
         match String.split_on_char ' ' request_line with
         | m :: p :: _ -> m, p
         | [ m ] -> m, "/"
         | [] -> request_line, "/"
       in
       (* ignore any query string when routing *)
       let path =
         match String.index_opt path '?' with
         | Some i -> String.sub path 0 i
         | None -> path
       in
       if meth <> "GET" && meth <> "HEAD" then
         respond oc ~status:"405 Method Not Allowed" ~content_type:"text/plain"
           "only GET is supported\n"
       else if path = "/" || path = "/metrics" then
         let body = try t.body () with _ -> "# metrics collection failed\n" in
         respond oc ~status:"200 OK"
           ~content_type:"text/plain; version=0.0.4; charset=utf-8"
           (if meth = "HEAD" then "" else body)
       else if path = "/healthz" then begin
         (* load-balancer probe: 200 "ok" when serving normally, 503
            with the reason when the store is degraded (read-only) —
            no CORAL protocol required.  A health callback that itself
            fails reports degraded rather than lying about health. *)
         let status, body =
           match (try t.health () with e -> `Degraded (Printexc.to_string e)) with
           | `Ok -> "200 OK", "ok\n"
           | `Degraded reason -> "503 Service Unavailable", "degraded " ^ reason ^ "\n"
         in
         respond oc ~status ~content_type:"text/plain"
           (if meth = "HEAD" then "" else body)
       end
       else
         respond oc ~status:"404 Not Found" ~content_type:"text/plain"
           (if meth = "HEAD" then "" else "not found (try /metrics)\n")
   with
  | Sys_error _ | End_of_file -> ()
  | Unix.Unix_error _ -> ());
  try Unix.close client with Unix.Unix_error _ -> ()

let accept_loop t =
  while not t.closed do
    match Unix.accept t.fd with
    | client, _addr ->
      ignore
        (Thread.create
           (fun () ->
             try serve_connection t client
             with _ -> ( try Unix.close client with Unix.Unix_error _ -> ()))
           ())
    | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL), _, _) -> t.closed <- true
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

let start ?(host = "127.0.0.1") ?(health = fun () -> `Ok) ~port body =
  let addr =
    match Unix.getaddrinfo host (string_of_int port) [ Unix.AI_SOCKTYPE Unix.SOCK_STREAM ] with
    | { Unix.ai_addr; _ } :: _ -> ai_addr
    | [] -> Unix.ADDR_INET (Unix.inet_addr_loopback, port)
  in
  let fd = Unix.socket (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd addr;
  Unix.listen fd 16;
  let bound_port =
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> port
  in
  let t = { fd; bound_port; body; health; closed = false; accept_thread = None } in
  t.accept_thread <- Some (Thread.create (fun () -> accept_loop t) ());
  t

let port t = t.bound_port

let stop t =
  if not t.closed then begin
    t.closed <- true;
    (try Unix.shutdown t.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
    (try Unix.close t.fd with Unix.Unix_error _ -> ());
    match t.accept_thread with
    | Some th -> Thread.join th
    | None -> ()
  end
