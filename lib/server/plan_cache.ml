type t = {
  parsed : (string, Coral.Ast.literal list) Hashtbl.t;  (* query text -> literals *)
  forms : (string, Coral.Optimizer.plan) Hashtbl.t;  (* adorned form -> plan *)
  mutable hits : int;
  mutable misses : int;
  mutable invalidations : int;
}

type stats = {
  entries : int;
  hits : int;
  misses : int;
  invalidations : int;
}

let create () =
  { parsed = Hashtbl.create 64;
    forms = Hashtbl.create 32;
    hits = 0;
    misses = 0;
    invalidations = 0
  }

(* The adorned query form of a literal: predicate/arity plus which
   argument positions arrive bound, e.g. "path/2:bf". *)
let form_key (a : Coral.Ast.atom) =
  let adorn =
    String.init (Array.length a.Coral.Ast.args) (fun i ->
        if Coral.Term.is_ground a.Coral.Ast.args.(i) then 'b' else 'f')
  in
  Printf.sprintf "%s/%d:%s" (Coral.Symbol.name a.Coral.Ast.pred) (Array.length a.Coral.Ast.args)
    adorn

let adornment_of (a : Coral.Ast.atom) =
  Array.map
    (fun arg -> if Coral.Term.is_ground arg then Coral.Ast.Bound else Coral.Ast.Free)
    a.Coral.Ast.args

let prepare t db text =
  let parse () =
    match Hashtbl.find_opt t.parsed text with
    | Some lits -> Ok lits
    | None -> begin
      match Coral.Parser.query text with
      | Ok lits ->
        Hashtbl.add t.parsed text lits;
        Ok lits
      | Error e -> Error e
    end
  in
  match parse () with
  | Error e -> Error e
  | Ok lits ->
    let planned = ref 0 and fresh = ref 0 in
    List.iter
      (fun lit ->
        match (lit : Coral.Ast.literal) with
        | Coral.Ast.Pos a -> begin
          let key = form_key a in
          if Hashtbl.mem t.forms key then incr planned
          else begin
            match
              Coral.Engine.plan_for (Coral.engine db) ~pred:a.Coral.Ast.pred
                ~arity:(Array.length a.Coral.Ast.args) ~adorn:(adornment_of a)
            with
            | Ok plan ->
              Hashtbl.add t.forms key plan;
              incr planned;
              incr fresh
            | Error _ -> ()  (* base/foreign literal: nothing to prepare *)
          end
        end
        | Coral.Ast.Neg _ | Coral.Ast.Cmp _ | Coral.Ast.Is _ -> ())
      lits;
    let tag =
      if !planned = 0 then `Unplanned
      else if !fresh = 0 then begin
        t.hits <- t.hits + 1;
        `Hit
      end
      else begin
        t.misses <- t.misses + 1;
        `Miss
      end
    in
    Ok (lits, tag)

let invalidate t db =
  Hashtbl.reset t.parsed;
  Hashtbl.reset t.forms;
  t.invalidations <- t.invalidations + 1;
  Coral.invalidate_plans db

let stats t =
  { entries = Hashtbl.length t.forms;
    hits = t.hits;
    misses = t.misses;
    invalidations = t.invalidations
  }
