(* The parsed-text memo is an LRU: served workloads can present an
   unbounded stream of distinct query texts (varying constants), and an
   unbounded Hashtbl would grow without limit for the server's
   lifetime.  Doubly-linked nodes give O(1) touch and eviction. *)
type node = {
  ntext : string;
  lits : Coral.Ast.literal list;
  mutable prev : node option;
  mutable next : node option;
}

type t = {
  lock : Mutex.t;
      (* snapshot readers prepare without the store lock, so the cache
         guards itself; planning itself runs outside the mutex *)
  parsed : (string, node) Hashtbl.t;  (* query text -> parse, LRU-bounded *)
  parsed_capacity : int;
  mutable lru_head : node option;  (* most recently used *)
  mutable lru_tail : node option;  (* least recently used; next eviction *)
  forms : (string * int, Coral.Optimizer.plan) Hashtbl.t;  (* (adorned form, epoch) -> plan *)
  mutable forms_epoch : int;  (* newest epoch seen; older entries are swept *)
  mutable hits : int;
  mutable misses : int;
  mutable unplanned : int;
  mutable invalidations : int;
  mutable evictions : int;
}

type stats = {
  entries : int;
  parsed_entries : int;
  hits : int;
  misses : int;
  unplanned : int;
  invalidations : int;
  evictions : int;
}

let create ?(parsed_capacity = 1024) () =
  { lock = Mutex.create ();
    parsed = Hashtbl.create 64;
    parsed_capacity = max 1 parsed_capacity;
    lru_head = None;
    lru_tail = None;
    forms = Hashtbl.create 32;
    forms_epoch = 0;
    hits = 0;
    misses = 0;
    unplanned = 0;
    invalidations = 0;
    evictions = 0
  }

let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.lru_head <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.lru_tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.lru_head;
  (match t.lru_head with Some h -> h.prev <- Some n | None -> t.lru_tail <- Some n);
  t.lru_head <- Some n

let touch t n =
  match t.lru_head with
  | Some h when h == n -> ()
  | _ ->
    unlink t n;
    push_front t n

let evict_excess t =
  while Hashtbl.length t.parsed > t.parsed_capacity do
    match t.lru_tail with
    | None -> assert false (* length > capacity >= 1 implies a tail *)
    | Some n ->
      unlink t n;
      Hashtbl.remove t.parsed n.ntext;
      t.evictions <- t.evictions + 1
  done

(* The adorned query form of a literal: predicate/arity plus which
   argument positions arrive bound, e.g. "path/2:bf". *)
let form_key (a : Coral.Ast.atom) =
  let adorn =
    String.init (Array.length a.Coral.Ast.args) (fun i ->
        if Coral.Term.is_ground a.Coral.Ast.args.(i) then 'b' else 'f')
  in
  Printf.sprintf "%s/%d:%s" (Coral.Symbol.name a.Coral.Ast.pred) (Array.length a.Coral.Ast.args)
    adorn

let adornment_of (a : Coral.Ast.atom) =
  Array.map
    (fun arg -> if Coral.Term.is_ground arg then Coral.Ast.Bound else Coral.Ast.Free)
    a.Coral.Ast.args

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* Form entries are keyed on (adorned form, epoch).  A prepare that is
   in flight against an old snapshot when a mutation invalidates the
   cache inserts under the OLD epoch's key, so readers of the new
   epoch can never be served the stale plan — the invalidation race
   closes structurally rather than by timing.

   Assert/retract-routed commits bump the epoch WITHOUT a full
   invalidate, so superseded epochs' entries — which can never again
   be hits for a new reader — are swept the first time a newer epoch
   shows up; without the sweep a write-heavy workload would orphan
   every commit's entries and grow the table without bound.  The
   immediately preceding epoch is kept: readers pinned just before
   the bump are still preparing against it. *)
let note_epoch t epoch =
  if epoch > t.forms_epoch then begin
    t.forms_epoch <- epoch;
    Hashtbl.filter_map_inplace
      (fun (_, e) plan -> if e >= epoch - 1 then Some plan else None)
      t.forms
  end

let prepare t ?(epoch = 0) db text =
  let parse () =
    with_lock t (fun () ->
        note_epoch t epoch;
        match Hashtbl.find_opt t.parsed text with
        | Some n ->
          touch t n;
          Ok n.lits
        | None -> begin
          match Coral.Parser.query text with
          | Ok lits ->
            let n = { ntext = text; lits; prev = None; next = None } in
            Hashtbl.add t.parsed text n;
            push_front t n;
            evict_excess t;
            Ok lits
          | Error e -> Error e
        end)
  in
  match parse () with
  | Error e -> Error e
  | Ok lits ->
    let planned = ref 0 and fresh = ref 0 in
    List.iter
      (fun lit ->
        match (lit : Coral.Ast.literal) with
        | Coral.Ast.Pos a -> begin
          let key = form_key a, epoch in
          if with_lock t (fun () -> Hashtbl.mem t.forms key) then incr planned
          else begin
            match
              (* planning runs unlocked: it walks the engine's module
                 list and can be slow, and two racing readers computing
                 the same form produce the same plan *)
              Coral.Engine.plan_for (Coral.engine db) ~pred:a.Coral.Ast.pred
                ~arity:(Array.length a.Coral.Ast.args) ~adorn:(adornment_of a)
            with
            | Ok plan ->
              with_lock t (fun () -> Hashtbl.replace t.forms key plan);
              incr planned;
              incr fresh
            | Error _ -> ()  (* base/foreign literal: nothing to prepare *)
          end
        end
        | Coral.Ast.Neg _ | Coral.Ast.Cmp _ | Coral.Ast.Is _ -> ())
      lits;
    let tag =
      with_lock t (fun () ->
          if !planned = 0 then begin
            t.unplanned <- t.unplanned + 1;
            `Unplanned
          end
          else if !fresh = 0 then begin
            t.hits <- t.hits + 1;
            `Hit
          end
          else begin
            t.misses <- t.misses + 1;
            `Miss
          end)
    in
    Ok (lits, tag)

let invalidate t db =
  with_lock t (fun () ->
      Hashtbl.reset t.parsed;
      t.lru_head <- None;
      t.lru_tail <- None;
      Hashtbl.reset t.forms;
      t.invalidations <- t.invalidations + 1);
  Coral.invalidate_plans db

let stats t =
  with_lock t (fun () ->
      { entries = Hashtbl.length t.forms;
        parsed_entries = Hashtbl.length t.parsed;
        hits = t.hits;
        misses = t.misses;
        unplanned = t.unplanned;
        invalidations = t.invalidations;
        evictions = t.evictions
      })
