(** The connection layer: sockets, framing, a thread per client.

    {!start} binds a TCP or Unix-domain socket, spawns an accept
    thread, and hands each accepted connection to its own thread
    running the read-request / {!Session.handle} / write-reply loop.
    Engine work is serialized by the store lock inside
    {!Session.handle}; a request that exceeds its session deadline is
    cancelled cooperatively, so one runaway query cannot wedge the
    server.

    Framing guards: request lines over {!Protocol.max_line_bytes} and
    [consult#] payloads over {!Protocol.max_payload_bytes} get an
    [err TOOBIG] reply and the connection is closed.

    Overload behavior: the accept thread survives descriptor
    exhaustion ([EMFILE]/[ENFILE]), aborted peers ([ECONNABORTED]) and
    [Thread.create] failure by shedding the one affected client; a
    connection past the configured session cap is shed with a single
    [err BUSY <retry-after-ms>] line before any thread is spawned for
    it. *)

type listen =
  [ `Tcp of string * int  (** host, port; port 0 picks an ephemeral port *)
  | `Unix of string  (** socket path; an existing file is replaced *) ]

type t

val start :
  ?consult:string list ->
  ?databases:Coral.Database.t list ->
  ?limits:Admission.config ->
  listen:listen ->
  Coral.t ->
  t
(** Bind, consult the given program files into the shared engine, and
    begin accepting.  Returns once the socket is listening.  SIGPIPE is
    ignored process-wide so a client vanishing mid-reply raises
    [EPIPE] in its connection thread instead of killing the server.
    [databases] lists persistent databases backing the engine's
    relations; {!shutdown} commits and closes them (under the store
    lock) so an orderly stop loses no durable data.  [limits] is the
    admission-control and budget policy (default: unlimited).
    @raise Unix.Unix_error when binding fails. *)

val port : t -> int
(** The bound TCP port (0 for Unix-domain sockets). *)

val store : t -> Session.store

val wait : t -> unit
(** Block until the server is shut down (joins the accept thread). *)

val shutdown : t -> unit
(** Stop accepting and close the listening socket (removing a
    Unix-domain socket's file).  Established connections finish their
    current request and close; attached persistent databases are
    committed and closed. *)
