(* A small pool of OCaml 5 domains that snapshot reads evaluate on.
   Connection threads are systhreads and share one runtime lock, so a
   long compute-bound fixpoint on the connection thread would stall
   every other reader for a whole scheduler quantum even with the
   store lock gone; handing evaluation to a worker domain lets the OS
   preempt fairly between a long query and short ones, and on
   multicore runs them truly in parallel.

   The pool is process-global (domains are a scarce runtime resource)
   and deliberately dumb: a FIFO of thunks, each paired with a result
   cell its submitter blocks on.  If the pool is unavailable — width 0,
   spawn failure, shutdown — [run] degrades to calling the thunk
   inline, which is always correct, just less concurrent. *)

type cell = {
  m : Mutex.t;
  c : Condition.t;
  mutable state : [ `Pending | `Done of Obj.t | `Raised of exn ];
}

type t = {
  lock : Mutex.t;
  nonempty : Condition.t;
  queue : (unit -> unit) Queue.t;
  mutable domains : unit Domain.t list;
  mutable stop : bool;
}

let worker_loop t =
  let rec loop () =
    Mutex.lock t.lock;
    while (not t.stop) && Queue.is_empty t.queue do
      Condition.wait t.nonempty t.lock
    done;
    if t.stop && Queue.is_empty t.queue then Mutex.unlock t.lock
    else begin
      let task = Queue.pop t.queue in
      Mutex.unlock t.lock;
      task ();
      loop ()
    end
  in
  loop ()

(* CORAL_READ_DOMAINS sets the width; 0 disables the pool (reads run
   inline on their connection thread).  The default scales with the
   machine: on one or two cores extra domains only add stop-the-world
   GC rendezvous stalls (every minor collection synchronizes ALL
   domains, and an evaluating domain plus domain 0's socket threads
   already oversubscribe the core), so the pool stays off and reads
   rely on systhread preemption; with more cores, up to four domains
   evaluate truly in parallel, leaving headroom for the parallel
   fixpoint's own pool. *)
let default_width () =
  match Sys.getenv_opt "CORAL_READ_DOMAINS" with
  | Some s -> ( try max 0 (min 16 (int_of_string (String.trim s))) with _ -> 0)
  | None ->
    let cores = Domain.recommended_domain_count () in
    if cores <= 2 then 0 else min 4 (cores - 1)

let create ~width =
  let t =
    { lock = Mutex.create ();
      nonempty = Condition.create ();
      queue = Queue.create ();
      domains = [];
      stop = false
    }
  in
  (try t.domains <- List.init width (fun _ -> Domain.spawn (fun () -> worker_loop t))
   with _ ->
     (* domain limit reached: whatever spawned still serves; none at
        all means every run is inline *)
     ());
  t

let shutdown t =
  Mutex.lock t.lock;
  t.stop <- true;
  Condition.broadcast t.nonempty;
  Mutex.unlock t.lock;
  List.iter Domain.join t.domains;
  t.domains <- []

let shared_pool : t option ref = ref None
let shared_lock = Mutex.create ()

let shared () =
  Mutex.lock shared_lock;
  let pool =
    match !shared_pool with
    | Some p -> Some p
    | None ->
      let width = default_width () in
      if width <= 0 then None
      else begin
        let p = create ~width in
        if p.domains = [] then None
        else begin
          shared_pool := Some p;
          (* parked domains would keep the process from exiting *)
          at_exit (fun () ->
              Mutex.lock shared_lock;
              let p = !shared_pool in
              shared_pool := None;
              Mutex.unlock shared_lock;
              Option.iter shutdown p);
          Some p
        end
      end
  in
  Mutex.unlock shared_lock;
  pool

let width () = match !shared_pool with Some p -> List.length p.domains | None -> 0

(* Run [f] on a pool domain, blocking this thread until it finishes;
   inline when no pool is available.  The Obj.t in the result cell is
   safe: it is written and read as the same ['a] within this call. *)
let run (f : unit -> 'a) : 'a =
  match shared () with
  | None -> f ()
  | Some t ->
    let cell = { m = Mutex.create (); c = Condition.create (); state = `Pending } in
    let task () =
      let outcome = try `Done (Obj.repr (f ())) with e -> `Raised e in
      Mutex.lock cell.m;
      cell.state <- outcome;
      Condition.signal cell.c;
      Mutex.unlock cell.m
    in
    Mutex.lock t.lock;
    if t.stop then begin
      Mutex.unlock t.lock;
      f ()
    end
    else begin
      Queue.push task t.queue;
      Condition.signal t.nonempty;
      Mutex.unlock t.lock;
      Mutex.lock cell.m;
      let rec wait () =
        match cell.state with
        | `Pending ->
          Condition.wait cell.c cell.m;
          wait ()
        | `Done v ->
          Mutex.unlock cell.m;
          (Obj.obj v : 'a)
        | `Raised e ->
          Mutex.unlock cell.m;
          raise e
      in
      wait ()
    end
