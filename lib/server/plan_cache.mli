(** The prepared-query plan cache.

    A served workload repeats a small set of query {e forms} with
    varying constants: [path(1, Y)], [path(7, Y)], ... all share the
    adorned form [path/2:bf].  Preparing a form means parsing the text
    and running the optimizer's rewriting once ({!Coral.Optimizer} via
    [Engine.plan_for]); this cache keys that work on the adorned form
    so every later request with the same form reuses the rewritten
    program.

    Mutations (consult, fact insertion) call {!invalidate}, which
    drops both this cache and the engine's plans {e and} save-module
    instances — a prepared query must never observe derived state that
    predates a base-fact update. *)

type t

type stats = {
  entries : int;  (** prepared forms currently cached *)
  parsed_entries : int;  (** parsed query texts currently memoized *)
  hits : int;  (** requests whose every form was already prepared *)
  misses : int;  (** requests that prepared at least one new form *)
  unplanned : int;
      (** requests with no plannable literal (pure base/builtin
          queries); counted separately so hits + misses accounts for
          exactly the plannable requests *)
  invalidations : int;
  evictions : int;  (** parsed texts dropped by the LRU bound *)
}

val create : ?parsed_capacity:int -> unit -> t
(** [parsed_capacity] (default 1024, min 1) bounds the parsed-text
    memo: served workloads repeat a few query {e forms} but present
    unboundedly many distinct texts (varying constants), so the text
    memo is an LRU while the form cache stays unbounded (form count is
    bounded by the program's predicates × adornments). *)

val prepare :
  t ->
  ?epoch:int ->
  Coral.t ->
  string ->
  (Coral.Ast.literal list * [ `Hit | `Miss | `Unplanned ], Coral.Parser.error) result
(** Parse a query (memoized on the text) and ensure every positive
    literal over a module export has a cached plan.  [`Hit]: all forms
    were already prepared; [`Miss]: at least one form was planned now;
    [`Unplanned]: no literal needed a plan (pure base/builtin query).
    Planning failures are not errors here — the literal is left for
    the evaluator to report.

    Form entries are keyed on (adorned form, [epoch]) (default 0): a
    prepare racing an {!invalidate} inserts under the epoch it was
    given — its stale snapshot's — so readers pinned to a newer epoch
    can never be served the stale plan.  The cache is internally
    mutexed (readers prepare without the store lock); planning itself
    runs outside the mutex. *)

val invalidate : t -> Coral.t -> unit
(** Empty the cache and the engine's plan/save-module caches. *)

val stats : t -> stats
