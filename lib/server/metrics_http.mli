(** A minimal HTTP listener for the Prometheus scrape endpoint
    ([--metrics-port]).

    Serves GET [/] and [/metrics] with the text produced by the body
    callback (typically {!Session.metrics_text} over the server's
    store) as [text/plain; version=0.0.4], and GET [/healthz] as a
    load-balancer probe (200 ["ok"] / 503 ["degraded <reason>"]);
    other paths get 404, other methods 405 — always a well-formed
    response with Content-Length, never a silently closed socket.  One
    thread per connection, [Connection: close] — just enough HTTP for
    [curl] and a Prometheus scraper, nothing more. *)

type t

val start :
  ?host:string ->
  ?health:(unit -> [ `Ok | `Degraded of string ]) ->
  port:int ->
  (unit -> string) ->
  t
(** [start ~port body] binds and starts accepting in a background
    thread.  [port = 0] binds an ephemeral port (see {!port}).  The
    body callback runs on a connection thread and must not assume any
    locks are held; so does [health], which backs [/healthz] (default:
    always [`Ok]).  Raises [Unix.Unix_error] if the bind fails. *)

val port : t -> int
(** The actually-bound TCP port. *)

val stop : t -> unit
(** Close the listening socket and join the accept thread.  In-flight
    connection threads finish on their own.  Idempotent. *)
