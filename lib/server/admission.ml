(* Admission control: the server-wide resource policy and the gate
   that enforces the in-flight half of it.

   Two caps shed load explicitly instead of queueing without bound:
   the connection cap is enforced in the accept loop (a connection
   past it gets one [err BUSY] line and is closed before a thread is
   spawned for it), and the in-flight cap is enforced here around
   every evaluating request.  Past the in-flight cap a small bounded
   wait queue absorbs short bursts; a request that cannot get a slot
   within [wait_ms] — or finds the queue itself full — is shed with
   [err BUSY <retry-after-ms>] and the client is expected to back
   off.

   All state lives in the value (one per store): module-level mutable
   state in lib/server is rejected by ci/lint_eval_globals.sh. *)

type config = {
  max_sessions : int;  (* concurrent connections; 0 = unlimited *)
  max_inflight : int;  (* concurrently evaluating requests; 0 = unlimited *)
  max_waiters : int;  (* bounded wait queue past the in-flight cap *)
  wait_ms : int;  (* longest a waiter parks before it is shed *)
  retry_after_ms : int;  (* backoff advice carried in BUSY replies *)
  max_query_tuples : int;  (* global per-query derived-tuple budget; 0 = none *)
  max_query_bytes : int;  (* global per-query bytes-estimate budget; 0 = none *)
}

let default =
  { max_sessions = 0;
    max_inflight = 0;
    max_waiters = 8;
    wait_ms = 100;
    retry_after_ms = 100;
    max_query_tuples = 0;
    max_query_bytes = 0
  }

type t = {
  cfg : config;
  lock : Mutex.t;
  mutable inflight : int;
  mutable waiters : int;
  admitted : int Atomic.t;  (* requests that got a slot *)
  waited : int Atomic.t;  (* ... of which had to park first *)
  busy_rejects : int Atomic.t;  (* in-flight-cap BUSY replies *)
  shed : int Atomic.t;  (* connections shed before a session existed *)
}

let create cfg =
  { cfg;
    lock = Mutex.create ();
    inflight = 0;
    waiters = 0;
    admitted = Atomic.make 0;
    waited = Atomic.make 0;
    busy_rejects = Atomic.make 0;
    shed = Atomic.make 0
  }

let config t = t.cfg

(* The stdlib Condition has no timed wait, and the park interval is a
   few milliseconds at most, so waiters poll on a short sleep: simple,
   fair enough for a queue of this size, and immune to a lost wakeup
   leaving a request parked forever. *)
let park_interval = 0.002

let admit t =
  if t.cfg.max_inflight <= 0 then begin
    Mutex.lock t.lock;
    t.inflight <- t.inflight + 1;
    Mutex.unlock t.lock;
    Atomic.incr t.admitted;
    `Admitted
  end
  else begin
    Mutex.lock t.lock;
    if t.inflight < t.cfg.max_inflight then begin
      t.inflight <- t.inflight + 1;
      Mutex.unlock t.lock;
      Atomic.incr t.admitted;
      `Admitted
    end
    else if t.waiters >= t.cfg.max_waiters then begin
      Mutex.unlock t.lock;
      Atomic.incr t.busy_rejects;
      `Busy t.cfg.retry_after_ms
    end
    else begin
      t.waiters <- t.waiters + 1;
      let deadline = Unix.gettimeofday () +. (float_of_int t.cfg.wait_ms /. 1000.0) in
      let rec park () =
        if t.inflight < t.cfg.max_inflight then begin
          t.inflight <- t.inflight + 1;
          t.waiters <- t.waiters - 1;
          Mutex.unlock t.lock;
          Atomic.incr t.admitted;
          Atomic.incr t.waited;
          `Admitted
        end
        else if Unix.gettimeofday () > deadline then begin
          t.waiters <- t.waiters - 1;
          Mutex.unlock t.lock;
          Atomic.incr t.busy_rejects;
          `Busy t.cfg.retry_after_ms
        end
        else begin
          Mutex.unlock t.lock;
          Thread.delay park_interval;
          Mutex.lock t.lock;
          park ()
        end
      in
      park ()
    end
  end

let release t =
  Mutex.lock t.lock;
  t.inflight <- t.inflight - 1;
  Mutex.unlock t.lock

let inflight t =
  Mutex.lock t.lock;
  let n = t.inflight in
  Mutex.unlock t.lock;
  n

let note_shed t = Atomic.incr t.shed

let admitted t = Atomic.get t.admitted
let waited t = Atomic.get t.waited
let busy_rejects t = Atomic.get t.busy_rejects
let shed t = Atomic.get t.shed
