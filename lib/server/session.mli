(** Sessions: one client's view of a shared CORAL engine.

    A {!store} is the server-wide shared state — the engine, the
    prepared-query {!Plan_cache}, the published snapshot chain, the
    writer-lane lock, and request counters.  A {!t} is one
    connection's session: it holds the session-local settings
    (currently the request deadline) and an isolated result cursor.

    Concurrency (DESIGN.md §11): read requests pin the currently
    published engine snapshot and evaluate a private read view on the
    execution pool without the store lock; mutations (consult, insert,
    queries that reach assert/retract) serialize on the writer lane,
    group-commit any persistent relations' WAL images, and publish the
    next epoch.  Stores over persistent databases whose relations have
    no lock-free view publish [None] and reads fall back to the locked
    lane.

    Overload protection (DESIGN.md §12): evaluating requests pass the
    store's {!Admission} gate (shed with [err BUSY] past the in-flight
    cap), run under the session's resource budgets (stopped with
    [err RESOURCE] past them), and mutations are refused with
    [err READONLY] while the store is degraded — entered automatically
    on ENOSPC or a hard WAL write fault, or forced by the operator
    [degrade] command. *)

type store

val make_store :
  ?databases:Coral.Database.t list -> ?limits:Admission.config -> Coral.t -> store
(** [databases] are the persistent stores whose dirty pages each
    commit stages onto the group-commit lane (default none — a purely
    in-memory server).  [limits] is the admission/budget policy
    (default {!Admission.default}: everything unlimited, as before
    overload protection existed). *)

val db : store -> Coral.t

val locked : store -> (unit -> 'a) -> 'a
(** Run a computation holding the store's writer-lane lock (used by
    non-protocol callers, e.g. benchmarks preparing data). *)

val commit : store -> invalidate:bool -> (unit -> 'a) -> 'a
(** Run a mutation on the write lane with the full commit tail: refuse
    if degraded, run [f] under the lock, stage the next snapshot
    version (invalidating prepared plans when [invalidate]),
    group-commit persistent relations, publish the new epoch.  The
    dist worker promotes delta batches through this, so distributed
    rounds are ordinary MVCC commits to concurrent readers.
    @raise Degraded (mapped to [err READONLY] by {!handle}) when the
    store is read-only. *)

val set_dist_handler : store -> (Protocol.request -> Protocol.response) -> unit
(** Install the cluster-worker handler for [shard]/[dprog]/[delta]/
    [barrier]/[dreset] requests.  The dist subsystem sits above this
    library (it needs both the protocol and the engine), so the server
    binary installs the hook at startup; without it dist requests
    answer [err CLUSTER].  Dist requests bypass the admission gate:
    they are the coordinator's control plane, and a delta blocked
    behind the in-flight cap would deadlock the round barrier. *)

val note_bytes_read : store -> int -> unit
(** Credit [n] wire bytes read from a client (or peer) connection to
    the store's [server.bytes.read] / [coral_bytes_read_total]
    counters; the connection loop calls this per line and payload. *)

val note_bytes_written : store -> int -> unit

val snapshot_epoch : store -> int
(** The currently published snapshot epoch (starts at 1; every
    committed mutation advances it). *)

val admission : store -> Admission.t
(** The store's admission gate (the accept loop uses it to enforce the
    connection cap and count sheds). *)

val session_count : store -> int
(** Currently open sessions (the connection-cap input). *)

val try_reserve : store -> cap:int -> bool
(** Atomically claim a session slot against [cap] (0 = uncapped).
    The accept loop reserves before spawning the connection thread —
    a connect burst arrives faster than spawned threads run, so a
    check against {!session_count} alone would admit the whole burst.
    A successful claim is released by {!close} (create the session
    with [~reserved:true]) or by {!unreserve} if no session follows. *)

val unreserve : store -> unit
(** Release a {!try_reserve} claim that will not become a session
    (the connection thread failed to spawn). *)

val is_degraded : store -> bool
(** Whether the store is currently refusing mutations. *)

val degraded_reason : store -> string option
(** [None] when healthy; otherwise ["auto: <reason>"] or
    ["operator: <reason>"] — the health endpoint's body. *)

type t

val create : ?reserved:bool -> store -> t
(** Open a session.  Lock-free (atomic counters only), so a new
    connection can always come up — and run [ps]/[kill] — while
    another connection's query holds the engine lock.  [~reserved:true]
    means the caller already claimed the session slot with
    {!try_reserve}; the open-session gauge is not bumped again. *)

val close : t -> unit
(** Mark the session closed (decrements the open-session gauge).
    Idempotent; the connection handler calls it when the socket
    drains. *)

val sid : t -> int
(** This session's id, as shown in [ps] lines and event-log records. *)

val deadline_ms : t -> int
(** The session's current per-request deadline (0 = none). *)

val handle : t -> Protocol.request -> Protocol.response
(** Execute one request against the shared store.  Never raises:
    evaluation failures, parse failures and exceeded deadlines come
    back as [err] replies.  Reads run lock-free against the pinned
    snapshot when one is available; mutations take the writer lane and
    publish a new epoch.  Evaluating requests are registered in
    {!Coral_obs.Query_log} for the duration and logged to the event
    log on completion; [Ps]/[Kill]/[Events] are answered without any
    lock. *)

val metrics_text : store -> string
(** Prometheus text exposition: the store's own counters (requests,
    errors, sessions, caches, snapshot epoch and pinned-reader gauges)
    followed by every metric in the global {!Coral_obs.Obs} registry.
    Reads are atomic or internally-mutexed loads — safe to call from
    the metrics listener thread without the store lock. *)
