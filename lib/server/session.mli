(** Sessions: one client's view of a shared CORAL engine.

    A {!store} is the server-wide shared state — the engine, the
    prepared-query {!Plan_cache}, a lock serializing engine access, and
    request counters.  A {!t} is one connection's session: it holds the
    session-local settings (currently the request deadline) and an
    isolated result cursor — every request materializes its answers
    under the lock, so clients interleave freely at request
    granularity while base relations and cached plans are shared.

    {!handle} is the entire request semantics, independent of any
    socket: the connection handler ({!Server}) and the tests drive it
    directly. *)

type store

val make_store : Coral.t -> store
val db : store -> Coral.t

val locked : store -> (unit -> 'a) -> 'a
(** Run a computation holding the store's engine lock (used by
    non-protocol callers, e.g. benchmarks preparing data). *)

type t

val create : store -> t
(** Open a session.  Lock-free (atomic counters only), so a new
    connection can always come up — and run [ps]/[kill] — while
    another connection's query holds the engine lock. *)

val close : t -> unit
(** Mark the session closed (decrements the open-session gauge).
    Idempotent; the connection handler calls it when the socket
    drains. *)

val sid : t -> int
(** This session's id, as shown in [ps] lines and event-log records. *)

val deadline_ms : t -> int
(** The session's current per-request deadline (0 = none). *)

val handle : t -> Protocol.request -> Protocol.response
(** Execute one request against the shared store (takes the lock).
    Never raises: evaluation failures, parse failures and exceeded
    deadlines come back as [err] replies.  Evaluating requests are
    registered in {!Coral_obs.Query_log} for the duration and logged
    to the event log on completion; [Ps]/[Kill]/[Events] are answered
    without the store lock. *)

val metrics_text : store -> string
(** Prometheus text exposition: the store's own counters (requests,
    errors, sessions, caches) followed by every metric in the global
    {!Coral_obs.Obs} registry.  Reads are plain loads — safe to call
    from the metrics listener thread without the store lock. *)
