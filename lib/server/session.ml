module Obs = Coral_obs.Obs
module Query_log = Coral_obs.Query_log
module Json = Coral_obs.Json
module Snapshot = Coral_storage.Snapshot

(* Request latency histograms; recorded when observability is enabled
   (the server enables it at startup).  Buckets are log-scale ns,
   exported with second-valued bounds. *)
let h_request = Obs.histogram "server.request_seconds"
let h_query = Obs.histogram "server.query_seconds"
let h_emit = Obs.histogram "phase.emit"

(* Concurrency model (DESIGN.md §11).  Reads are MVCC: every committed
   mutation publishes an immutable epoch-stamped view of the engine
   (frozen relations + the rule state), and a read request pins the
   current version, builds a private read-view engine over it, and
   evaluates on the execution pool without ever taking [lock].  Writes
   (consult/insert, and any query that trips an update predicate) go
   through the single writer lane: mutate under [lock], stage the next
   view and the persistent relations' WAL images, release the lock,
   group-commit, then publish the new epoch.  When some relation has
   no lock-free view (persistent storage), the published view is
   [None] and reads fall back to the locked lane — exactly the old
   behavior. *)
(* Degraded mode: a store that cannot make mutations durable flips
   read-only instead of failing every commit.  [`Auto] is entered on
   ENOSPC or a hard WAL write fault and left by a successful
   rate-limited recovery probe; [`Forced] is an operator [degrade] and
   only [restore] clears it. *)
type degraded =
  | Healthy
  | Auto of string
  | Forced of string

exception Degraded of string

type store = {
  sdb : Coral.t;
  lock : Mutex.t;  (* the writer lane; also serializes fallback reads *)
  cache : Plan_cache.t;
  snap : Coral.Engine.view option Snapshot.t;
  databases : Coral.Database.t list;  (* persistent stores to group-commit *)
  admission : Admission.t;  (* caps + shed/reject counters *)
  dlock : Mutex.t;  (* degraded-state flips and the probe rate limit *)
  mutable degraded : degraded;  (* written under [dlock]; read lock-free *)
  mutable last_probe : float;  (* Unix time of the last recovery probe *)
  (* counters are atomic: requests are no longer serialized by [lock] *)
  requests : int Atomic.t;
  errors : int Atomic.t;
  timeouts : int Atomic.t;
  budget_kills : int Atomic.t;  (* queries stopped by a resource budget *)
  sessions : int Atomic.t;  (* currently open *)
  next_sid : int Atomic.t;
  bytes_read : int Atomic.t;  (* wire bytes in/out, summed over sessions *)
  bytes_written : int Atomic.t;
  (* incremental-maintenance accounting, summed over updates *)
  maint_inserts : int Atomic.t;  (* insert requests applied *)
  maint_retracts : int Atomic.t;  (* retract requests applied *)
  maint_derived : int Atomic.t;  (* extent tuples added by propagation *)
  maint_deleted : int Atomic.t;  (* extent tuples removed by DRed *)
  maint_rederived : int Atomic.t;  (* over-deletions restored *)
  maint_fallback : int Atomic.t;  (* updates applied without maintenance *)
  (* Cluster worker hook: the dist subsystem lives above this library
     (it needs the protocol AND the engine), so the worker installs a
     handler here rather than being called directly.  [None] answers
     dist requests with [err CLUSTER]. *)
  mutable dist_handler : (Protocol.request -> Protocol.response) option;
}

let make_store ?(databases = []) ?(limits = Admission.default) db =
  { sdb = db;
    lock = Mutex.create ();
    cache = Plan_cache.create ();
    (* the initial version covers everything loaded before serving
       starts (--consult files, installed relations) *)
    snap = Snapshot.create (Coral.Engine.snapshot (Coral.engine db));
    databases;
    admission = Admission.create limits;
    dlock = Mutex.create ();
    degraded = Healthy;
    last_probe = 0.0;
    requests = Atomic.make 0;
    errors = Atomic.make 0;
    timeouts = Atomic.make 0;
    budget_kills = Atomic.make 0;
    sessions = Atomic.make 0;
    next_sid = Atomic.make 0;
    bytes_read = Atomic.make 0;
    bytes_written = Atomic.make 0;
    maint_inserts = Atomic.make 0;
    maint_retracts = Atomic.make 0;
    maint_derived = Atomic.make 0;
    maint_deleted = Atomic.make 0;
    maint_rederived = Atomic.make 0;
    maint_fallback = Atomic.make 0;
    dist_handler = None
  }

let db store = store.sdb
let admission store = store.admission
let session_count store = Atomic.get store.sessions
let set_dist_handler store h = store.dist_handler <- Some h

(* Wire accounting: the connection loop credits what it reads and
   writes; delta exchange between workers runs over the same sockets,
   so these are the counters that make exchange volume observable. *)
let note_bytes_read store n = if n > 0 then ignore (Atomic.fetch_and_add store.bytes_read n)

let note_bytes_written store n =
  if n > 0 then ignore (Atomic.fetch_and_add store.bytes_written n)

let locked store f =
  Mutex.lock store.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock store.lock) f

let snapshot_epoch store = Snapshot.epoch store.snap

(* ------------------------------------------------------------------ *)
(* Degraded (read-only) mode                                           *)
(* ------------------------------------------------------------------ *)

let is_degraded store = store.degraded <> Healthy

(* For health probes: None when healthy, the reason otherwise. *)
let degraded_reason store =
  match store.degraded with
  | Healthy -> None
  | Auto reason -> Some ("auto: " ^ reason)
  | Forced reason -> Some ("operator: " ^ reason)

let enter_degraded store d =
  Mutex.lock store.dlock;
  let prev = store.degraded in
  let apply =
    match prev, d with
    | Forced _, Auto _ -> false  (* an operator hold outranks a fault *)
    | _, Healthy -> false  (* leaving goes through restore/recovery *)
    | _ -> prev <> d
  in
  if apply then store.degraded <- d;
  Mutex.unlock store.dlock;
  if apply then
    Query_log.Events.log ~kind:"degrade"
      [ "mode", Json.Str (match d with Forced _ -> "operator" | _ -> "auto");
        "reason", Json.Str (match d with Auto r | Forced r -> r | Healthy -> "")
      ]

(* Mutations arriving while auto-degraded trigger a rate-limited
   recovery probe: write + fsync + remove a scratch file in every
   attached database's directory.  If the probes succeed the fault
   (ENOSPC, a disk coming back) has cleared and the store resumes
   serving writes; an operator-forced degrade is never auto-cleared. *)
let probe_file dir =
  let path = Filename.concat dir ".coral-write-probe" in
  let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      ignore (Unix.write_substring fd "coral" 0 5);
      Unix.fsync fd);
  Sys.remove path

let try_auto_recovery store =
  Mutex.lock store.dlock;
  let attempt =
    match store.degraded with
    | Auto _ ->
      let now = Unix.gettimeofday () in
      if now -. store.last_probe >= 1.0 then begin
        store.last_probe <- now;
        true
      end
      else false
    | _ -> false
  in
  Mutex.unlock store.dlock;
  if attempt then begin
    match List.iter (fun db -> probe_file (Coral.Database.dir db)) store.databases with
    | () ->
      Mutex.lock store.dlock;
      let restored =
        match store.degraded with
        | Auto _ ->
          store.degraded <- Healthy;
          true
        | _ -> false
      in
      Mutex.unlock store.dlock;
      if restored then Query_log.Events.log ~kind:"restore" [ "mode", Json.Str "auto" ]
    | exception _ -> ()  (* still failing: stay degraded *)
  end

let check_writable store =
  (match store.degraded with Auto _ -> try_auto_recovery store | _ -> ());
  match store.degraded with
  | Healthy -> ()
  | Auto reason | Forced reason -> raise (Degraded reason)

(* A mutation that could not be made durable flips the store
   read-only: ENOSPC or a hard (non-transient) write-side storage
   fault.  Hard READ faults do not degrade — a quarantined page is a
   data problem, not a reason to refuse commits. *)
let degrade_on_write_fault store = function
  | Coral_storage.Disk.Fault { transient = false; op; detail; _ } when op <> "read" ->
    enter_degraded store (Auto detail)
  | Unix.Unix_error (Unix.ENOSPC, fn, _) ->
    enter_degraded store (Auto ("ENOSPC during " ^ fn))
  | _ -> ()

(* The writer lane's commit tail.  [stage_commit] runs under [lock]:
   freeze the engine into the next version and queue the persistent
   relations' dirty pages on their group-commit lanes (lane order =
   log order).  [publish_commit] runs after the lock is released:
   block for the WAL group flush — concurrent writers' submissions
   merge into one fsync — and only then publish the epoch, so a reader
   can never pin state that is not yet durable. *)
let stage_commit store =
  let version =
    Snapshot.stage store.snap (Coral.Engine.snapshot (Coral.engine store.sdb))
  in
  let staged = List.concat_map Coral.Database.stage store.databases in
  version, staged

let publish_commit store (version, staged) =
  Coral.Database.publish staged;
  Snapshot.publish store.snap version

type t = {
  store : store;
  sid : int;
  mutable deadline_ms : int;
  mutable limit_tuples : int;  (* per-session derived-tuple budget; 0 = none *)
  mutable limit_bytes : int;  (* per-session bytes-estimate budget; 0 = none *)
  mutable closed : bool;
}

(* Atomically claim a session slot against [cap] (0 = uncapped).  The
   accept loop reserves BEFORE spawning the connection thread — a
   connect burst arrives faster than spawned threads run, so counting
   in [create] alone would let the whole burst pass the cap check.
   The claim is released by [close] (via [create ~reserved:true]) or
   by [unreserve] when the thread spawn fails. *)
let try_reserve store ~cap =
  let rec go () =
    let n = Atomic.get store.sessions in
    if cap > 0 && n >= cap then false
    else if Atomic.compare_and_set store.sessions n (n + 1) then true
    else go ()
  in
  go ()

let unreserve store = ignore (Atomic.fetch_and_add store.sessions (-1))

let create ?(reserved = false) store =
  if not reserved then ignore (Atomic.fetch_and_add store.sessions 1);
  { store;
    sid = Atomic.fetch_and_add store.next_sid 1 + 1;
    deadline_ms = 0;
    limit_tuples = 0;
    limit_bytes = 0;
    closed = false
  }

let close t =
  if not t.closed then begin
    t.closed <- true;
    ignore (Atomic.fetch_and_add t.store.sessions (-1))
  end

let sid t = t.sid
let deadline_ms t = t.deadline_ms

(* ------------------------------------------------------------------ *)
(* Request execution                                                   *)
(* ------------------------------------------------------------------ *)

(* The adorned forms of a query's positive literals — the registry's
   "what shape of plan is this" descriptor. *)
let adorned_of_lits lits =
  List.filter_map
    (function
      | Coral.Ast.Pos (a : Coral.Ast.atom) ->
        let adorn =
          Array.map
            (fun arg -> if Coral.Term.is_ground arg then Coral.Ast.Bound else Coral.Ast.Free)
            a.Coral.Ast.args
        in
        Some
          (Printf.sprintf "%s/%d:%s"
             (Coral.Symbol.name a.Coral.Ast.pred)
             (Array.length a.Coral.Ast.args)
             (Coral.Ast.adornment_to_string adorn))
      | _ -> None)
    lits
  |> String.concat ","

(* Resource budgets.  The effective per-query budget is the tighter of
   the session's `limit ...` setting and the store-wide flag; the
   bytes budget is enforced as an estimated tuple count at a
   documented per-tuple footprint (a derived tuple costs roughly a
   boxed array of a few words plus index entries).  Enforcement rides
   the cancellation seam: the fixpoint publishes accumulated
   derivations at tick granularity (see Fixpoint.set_progress) and the
   combined check below trips once they exceed the budget. *)
let approx_tuple_bytes = 64

type budget_trip = {
  bt_kind : Protocol.limit_kind;
  bt_limit : int;  (* the configured limit, in its own unit *)
}

let effective_limit ~session ~global =
  if session > 0 then if global > 0 then min session global else session else global

(* The budget as a derived-tuple cap: [(trip-descriptor, cap)]. *)
let tuple_budget t =
  let cfg = Admission.config t.store.admission in
  let tuples =
    effective_limit ~session:t.limit_tuples ~global:cfg.Admission.max_query_tuples
  in
  let bytes = effective_limit ~session:t.limit_bytes ~global:cfg.Admission.max_query_bytes in
  let by_bytes = if bytes > 0 then max 1 (bytes / approx_tuple_bytes) else 0 in
  if tuples > 0 && (by_bytes = 0 || tuples <= by_bytes) then
    Some ({ bt_kind = Protocol.Tuples; bt_limit = tuples }, tuples)
  else if by_bytes > 0 then Some ({ bt_kind = Protocol.Bytes; bt_limit = bytes }, by_bytes)
  else None

(* Run [f] under this session's guards ON THE GIVEN ENGINE (the shared
   master on the locked lane, a private read view on the snapshot
   lane): evaluation cooperatively polls a combined check — the
   registry's kill flag for this entry, the resource budget, and the
   session deadline, if one is set — and publishes per-iteration
   progress into the entry.  The check is installed even with no
   deadline, so `kill` always works.  A budget trip is recorded in
   [resource] so [evaluated] can tell it apart from a kill or a
   deadline when the resulting [Cancelled] surfaces. *)
let with_guards t dbv entry resource f =
  let limit =
    if t.deadline_ms <= 0 then infinity
    else Unix.gettimeofday () +. (float_of_int t.deadline_ms /. 1000.0)
  in
  let budget = tuple_budget t in
  let check () =
    Query_log.killed entry
    || (match budget with
       | Some (trip, cap) when Query_log.derivations entry > cap ->
         if !resource = None then resource := Some trip;
         true
       | _ -> false)
    || Unix.gettimeofday () > limit
  in
  Coral.with_cancel dbv check (fun () ->
      Coral.with_progress dbv
        (fun ~rounds:_ ~delta ~lanes ->
          Query_log.progress entry ~delta ~lanes;
          (* cooperative scheduling point between fixpoint iterations:
             without it a long compute-bound query holds the runtime
             lock for the full systhread quantum (~50ms) and point
             reads on other connections eat that as tail latency *)
          Thread.yield ())
        f)

(* The common wrapper for every evaluating request: register in the
   active-query registry, evaluate under the guards, unregister, and
   log a completion event with the outcome.  [wrap] is the lane —
   [locked store] on the write/fallback lane, [Exec_pool.run] on the
   snapshot lane — and wraps guards + evaluation as one unit, so
   ambient hooks on the shared master engine are only ever installed
   while holding the store lock.  [k] builds the success response; a
   kill comes back as [err KILLED] (the session stays usable); every
   other failure re-raises into [handle]'s mapping after the event is
   logged. *)
let evaluated t ~dbv ?(epoch = 0) ~wrap ~kind ?(adorned = "") ?(plan_cache = "") text
    ~rows_of f k =
  let entry =
    Query_log.register ~session:t.sid ~deadline_ms:t.deadline_ms
      ~workers:(Coral.workers dbv) ~epoch ~adorned ~kind text
  in
  let t0 = Obs.now_ns () in
  let finish outcome ~rows =
    Query_log.unregister entry;
    Query_log.Events.query_event ~kind ~id:(Query_log.id entry) ~session:t.sid ~text
      ~latency_ms:(float_of_int (Obs.now_ns () - t0) /. 1e6)
      ~rows
      ~iterations:(Query_log.iterations entry)
      ~derivations:(Query_log.derivations entry)
      ~plan_cache ~outcome ()
  in
  let resource = ref None in
  (* The request-level span runs on the connection thread — the one
     place the wire trace id is installed — so a distributed trace
     always has a per-worker "server.<kind>" span even though the
     engine's inner spans run on pool domains. *)
  let qid = Query_log.id entry in
  match
    Obs.Span.with_
      ~attrs:(fun () -> [ "query", string_of_int qid ])
      ("server." ^ kind)
      (fun () -> wrap (fun () -> with_guards t dbv entry resource f))
  with
  | v ->
    finish "ok" ~rows:(rows_of v);
    k v
  | exception Coral.Cancelled when Query_log.killed entry ->
    finish "killed" ~rows:0;
    Protocol.err Protocol.Killed
      (Printf.sprintf "query %d killed by operator request" (Query_log.id entry))
  | exception Coral.Cancelled when !resource <> None ->
    finish "resource" ~rows:0;
    Atomic.incr t.store.budget_kills;
    let { bt_kind; bt_limit } = Option.get !resource in
    let budget_desc =
      match bt_kind with
      | Protocol.Tuples -> Printf.sprintf "budget of %d derived tuples" bt_limit
      | Protocol.Bytes ->
        Printf.sprintf "estimated-bytes budget of %d (~%d bytes/tuple)" bt_limit
          approx_tuple_bytes
    in
    Protocol.err Protocol.Resource
      (Printf.sprintf "query %d exceeded its %s after %d iterations and %d derivations"
         (Query_log.id entry) budget_desc
         (Query_log.iterations entry)
         (Query_log.derivations entry))
  | exception e ->
    finish (match e with Coral.Cancelled -> "timeout" | _ -> "error") ~rows:0;
    raise e

let render_rows (r : Coral.Engine.query_result) =
  List.map
    (fun row ->
      if r.Coral.Engine.qvars = [] then Protocol.Ans "true"
      else
        Protocol.Ans
          (String.concat ", "
             (List.map2
                (fun (v : Coral.Term.var) value ->
                  Printf.sprintf "%s = %s" v.Coral.Term.vname (Coral.Term.to_string value))
                r.Coral.Engine.qvars (Array.to_list row))))
    r.Coral.Engine.rows

(* ------------------------------------------------------------------ *)
(* Lane selection                                                      *)
(* ------------------------------------------------------------------ *)

let string_contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

(* The read-only foreigns installed in read views raise with this
   marker; catching it means the request needs the write lane. *)
let read_only_violation = function
  | Coral.Engine.Engine_error m -> string_contains ~sub:"unavailable in a snapshot read" m
  | _ -> false

(* A query whose top-level literals call the update predicates is
   routed to the write lane up front (deeper uses inside module rules
   are caught by the violation fallback). *)
let mutating_lits lits =
  List.exists
    (function
      | Coral.Ast.Pos (a : Coral.Ast.atom) ->
        let n = Coral.Symbol.name a.Coral.Ast.pred in
        (n = "assert" || n = "retract") && Array.length a.Coral.Ast.args = 1
      | _ -> false)
    lits

(* Write-lane wrapper for requests that may mutate: evaluate under the
   lock, stage the next version while still holding it, publish after
   releasing it.  Used by consult and by queries routed off the
   snapshot lane; plain fallback reads (persistent databases) use
   [locked] alone — they publish nothing. *)
let wrap_write ?(invalidate = false) store g =
  (* a degraded store refuses mutations up front (attempting a
     rate-limited recovery probe first if the degrade was automatic) *)
  check_writable store;
  try
    let r, staged =
      locked store (fun () ->
          let r = g () in
          if invalidate then Plan_cache.invalidate store.cache store.sdb;
          r, stage_commit store)
    in
    publish_commit store staged;
    r
  with e ->
    degrade_on_write_fault store e;
    raise e

(* The write lane for non-protocol callers (the dist worker mutates
   relations during barrier steps): same commit tail as a consult, so
   MVCC readers observe distributed promotions as ordinary epochs. *)
let commit store ~invalidate f = wrap_write ~invalidate store f

let do_query t text =
  let store = t.store in
  let version = Snapshot.pin store.snap in
  Fun.protect ~finally:(fun () -> Snapshot.release version)
  @@ fun () ->
  let epoch = Snapshot.version_epoch version in
  let run ~dbv ~wrap prepared =
    let lits, tag = prepared in
    let plan_cache =
      match tag with `Hit -> "hit" | `Miss -> "miss" | `Unplanned -> "unplanned"
    in
    evaluated t ~dbv ~epoch ~wrap ~kind:"query" ~adorned:(adorned_of_lits lits) ~plan_cache
      text
      ~rows_of:(fun (r : Coral.Engine.query_result) -> List.length r.Coral.Engine.rows)
      (fun () -> Coral.Engine.query (Coral.engine dbv) lits)
      (fun r ->
        let cache_note =
          match tag with
          | `Hit -> " (plan cache: hit)"
          | `Miss -> " (plan cache: miss)"
          | `Unplanned -> ""
        in
        let n = List.length r.Coral.Engine.rows in
        let payload = Obs.Histogram.time h_emit (fun () -> render_rows r) in
        Protocol.ok
          ~detail:(Printf.sprintf "%d answer%s%s" n (if n = 1 then "" else "s") cache_note)
          payload)
  in
  match Snapshot.view version with
  | None -> begin
    (* no lock-free view (persistent relations): the locked lane *)
    match Plan_cache.prepare store.cache ~epoch store.sdb text with
    | Error e -> Protocol.err Protocol.Parse (Format.asprintf "%a" Coral.Parser.pp_error e)
    | Ok prepared -> run ~dbv:store.sdb ~wrap:(locked store) prepared
  end
  | Some view -> begin
    let rdb = Coral.of_engine (Coral.Engine.read_view view) in
    match Plan_cache.prepare store.cache ~epoch rdb text with
    | Error e -> Protocol.err Protocol.Parse (Format.asprintf "%a" Coral.Parser.pp_error e)
    | Ok ((lits, _) as prepared) ->
      if mutating_lits lits then run ~dbv:store.sdb ~wrap:(wrap_write store) prepared
      else begin
        try run ~dbv:rdb ~wrap:Exec_pool.run prepared
        with e when read_only_violation e ->
          (* an update predicate fired inside a module rule: replay on
             the write lane (the read view mutated nothing) *)
          run ~dbv:store.sdb ~wrap:(wrap_write store) prepared
      end
  end

let do_consult t text =
  let store = t.store in
  evaluated t ~dbv:store.sdb ~wrap:(wrap_write ~invalidate:true store) ~kind:"consult" text
    ~rows_of:(fun _ -> 0)
    (fun () -> Coral.Engine.consult (Coral.engine store.sdb) text)
    (fun results ->
      (* embedded query results are discarded, as in Coral.consult_text *)
      ignore results;
      Protocol.ok ~detail:"consulted" [])

(* The payload of an update request: fact items, with same-operation
   update items ([insert f(1).] sent over the insert command) accepted
   too, so REPL scripts paste straight into the wire protocol. *)
let parse_update_facts ~op ~usage text =
  match Coral.Parser.program text with
  | Error e -> Error (Protocol.err Protocol.Parse (Format.asprintf "%a" Coral.Parser.pp_error e))
  | Ok items ->
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | Coral.Ast.Fact a :: rest -> go (a :: acc) rest
      | Coral.Ast.Update (o, a) :: rest when o = op -> go (a :: acc) rest
      | _ :: _ -> Error (Protocol.err Protocol.Parse usage)
    in
    (match go [] items with
    | Ok [] -> Error (Protocol.err Protocol.Parse usage)
    | r -> r)

(* Maintenance accounting + the per-update JSONL event: how much delta
   propagation each update caused (mode=recompute when the engine had
   maintenance off and derived state is rebuilt on read instead). *)
let note_update store ~op (rep : Coral.Engine.update_report) =
  let applied = rep.Coral.Engine.ur_applied in
  let ctr = if op = "insert" then store.maint_inserts else store.maint_retracts in
  if applied > 0 then ignore (Atomic.fetch_and_add ctr applied);
  ignore (Atomic.fetch_and_add store.maint_derived rep.Coral.Engine.ur_derived);
  ignore (Atomic.fetch_and_add store.maint_deleted rep.Coral.Engine.ur_deleted);
  ignore (Atomic.fetch_and_add store.maint_rederived rep.Coral.Engine.ur_rederived);
  if not rep.Coral.Engine.ur_maintained then Atomic.incr store.maint_fallback;
  Query_log.Events.log ~kind:"maintain"
    [ "op", Json.Str op;
      "applied", Json.Int applied;
      "noop", Json.Int rep.Coral.Engine.ur_noop;
      "derived", Json.Int rep.Coral.Engine.ur_derived;
      "deleted", Json.Int rep.Coral.Engine.ur_deleted;
      "rederived", Json.Int rep.Coral.Engine.ur_rederived;
      "rounds", Json.Int rep.Coral.Engine.ur_rounds;
      "mode", Json.Str (if rep.Coral.Engine.ur_maintained then "incremental" else "recompute")
    ]

(* Inserts/retracts commit through the write lane but do NOT blow the
   whole plan cache: the engine scopes invalidation to the updated
   predicates' dependents, and the prepared-forms cache is epoch-keyed
   (the publish below outdates its entries naturally). *)
let do_insert t text =
  let store = t.store in
  match
    parse_update_facts ~op:Coral.Ast.Upd_insert
      ~usage:"insert expects one or more facts, e.g.  insert edge(1, 2)." text
  with
  | Error r -> r
  | Ok atoms ->
    let eng = Coral.engine store.sdb in
    let facts =
      List.map (fun (a : Coral.Ast.atom) -> a.Coral.Ast.pred, a.Coral.Ast.args) atoms
    in
    let rep = wrap_write store (fun () -> Coral.Engine.insert_facts eng facts) in
    note_update store ~op:"insert" rep;
    Query_log.Events.log ~kind:"insert"
      [ "session", Json.Int t.sid;
        "facts", Json.Int (List.length facts);
        "stored", Json.Int rep.Coral.Engine.ur_applied;
        "duplicate", Json.Int rep.Coral.Engine.ur_noop
      ];
    Protocol.ok
      ~detail:
        (Printf.sprintf "inserted %d, duplicate %d" rep.Coral.Engine.ur_applied
           rep.Coral.Engine.ur_noop)
      []

let do_retract t text =
  let store = t.store in
  match
    parse_update_facts ~op:Coral.Ast.Upd_retract
      ~usage:"retract expects one or more facts, e.g.  retract edge(1, 2)." text
  with
  | Error r -> r
  | Ok atoms ->
    let eng = Coral.engine store.sdb in
    let facts =
      List.map (fun (a : Coral.Ast.atom) -> a.Coral.Ast.pred, a.Coral.Ast.args) atoms
    in
    let rep = wrap_write store (fun () -> Coral.Engine.retract_facts eng facts) in
    note_update store ~op:"retract" rep;
    Query_log.Events.log ~kind:"retract"
      [ "session", Json.Int t.sid;
        "facts", Json.Int (List.length facts);
        "removed", Json.Int rep.Coral.Engine.ur_applied;
        "missing", Json.Int rep.Coral.Engine.ur_noop
      ];
    Protocol.ok
      ~detail:
        (Printf.sprintf "retracted %d, missing %d" rep.Coral.Engine.ur_applied
           rep.Coral.Engine.ur_noop)
      []

let single_literal text =
  match Coral.Parser.query text with
  | Error e -> Error (Protocol.err Protocol.Parse (Format.asprintf "%a" Coral.Parser.pp_error e))
  | Ok [ Coral.Ast.Pos a ] -> Ok a
  | Ok _ -> Error (Protocol.err Protocol.Parse "expected a single positive literal")

let do_explain t text =
  let store = t.store in
  match single_literal text with
  | Error r -> r
  | Ok a -> begin
    let adorn =
      Array.map
        (fun arg -> if Coral.Term.is_ground arg then Coral.Ast.Bound else Coral.Ast.Free)
        a.Coral.Ast.args
    in
    let version = Snapshot.pin store.snap in
    Fun.protect ~finally:(fun () -> Snapshot.release version)
    @@ fun () ->
    let plan_for dbv =
      Coral.Engine.plan_for (Coral.engine dbv) ~pred:a.Coral.Ast.pred
        ~arity:(Array.length a.Coral.Ast.args) ~adorn
    in
    let planned =
      match Snapshot.view version with
      | Some view -> plan_for (Coral.of_engine (Coral.Engine.read_view view))
      | None -> locked store (fun () -> plan_for store.sdb)
    in
    match planned with
    | Error e -> Protocol.err Protocol.Eval e
    | Ok plan ->
      let text = Format.asprintf "%a" Coral.Optimizer.pp_plan plan in
      Protocol.ok (List.map (fun l -> Protocol.Txt l) (String.split_on_char '\n' text))
  end

let report_response = function
  | Error e -> Protocol.err Protocol.Eval e
  | Ok report ->
    let lines = String.split_on_char '\n' report in
    let lines = List.filter (fun l -> l <> "") lines in
    Protocol.ok (List.map (fun l -> Protocol.Txt l) lines)

(* why / explain analyze: evaluating reports — same lane selection as
   queries, with the same write-lane replay if an update predicate
   fires inside a module rule. *)
let do_report t ~kind run text =
  let store = t.store in
  let version = Snapshot.pin store.snap in
  Fun.protect ~finally:(fun () -> Snapshot.release version)
  @@ fun () ->
  let epoch = Snapshot.version_epoch version in
  let eval ~dbv ~wrap =
    evaluated t ~dbv ~epoch ~wrap ~kind text
      ~rows_of:(fun _ -> 0)
      (fun () -> run dbv)
      report_response
  in
  match Snapshot.view version with
  | None -> eval ~dbv:store.sdb ~wrap:(locked store)
  | Some view -> begin
    let rdb = Coral.of_engine (Coral.Engine.read_view view) in
    try eval ~dbv:rdb ~wrap:Exec_pool.run
    with e when read_only_violation e -> eval ~dbv:store.sdb ~wrap:(wrap_write store)
  end

let do_why t text =
  do_report t ~kind:"why" (fun dbv -> Coral.Engine.why (Coral.engine dbv) text) text

let do_explain_analyze t text =
  do_report t ~kind:"explain_analyze"
    (fun dbv -> Coral.Engine.explain_analyze (Coral.engine dbv) text)
    text

let do_stats t =
  let store = t.store in
  let eng = Coral.engine store.sdb in
  let c = Plan_cache.stats store.cache in
  let plan_hits, plan_misses = Coral.plan_cache_stats store.sdb in
  let derivations, duplicates, scans = Coral.Relation.global_stats () in
  (* dotted names are the stable interface ... *)
  let dotted =
    [ Printf.sprintf "server.requests=%d" (Atomic.get store.requests);
      Printf.sprintf "server.errors=%d" (Atomic.get store.errors);
      Printf.sprintf "server.timeouts=%d" (Atomic.get store.timeouts);
      Printf.sprintf "server.sessions=%d" (Atomic.get store.sessions);
      Printf.sprintf "server.active_queries=%d" (Query_log.active_count ());
      Printf.sprintf "server.events=%d" (Query_log.Events.total ());
      Printf.sprintf "server.degraded=%d" (if is_degraded store then 1 else 0);
      Printf.sprintf "server.budget_kills=%d" (Atomic.get store.budget_kills);
      Printf.sprintf "server.bytes.read=%d" (Atomic.get store.bytes_read);
      Printf.sprintf "server.bytes.written=%d" (Atomic.get store.bytes_written);
      Printf.sprintf "admission.inflight=%d" (Admission.inflight store.admission);
      Printf.sprintf "admission.admitted=%d" (Admission.admitted store.admission);
      Printf.sprintf "admission.waited=%d" (Admission.waited store.admission);
      Printf.sprintf "admission.busy_rejects=%d" (Admission.busy_rejects store.admission);
      Printf.sprintf "admission.shed=%d" (Admission.shed store.admission);
      Printf.sprintf "snapshot.epoch=%d" (Snapshot.epoch store.snap);
      Printf.sprintf "snapshot.pinned=%d" (Snapshot.pinned_count ());
      Printf.sprintf "snapshot.read_domains=%d" (Exec_pool.width ());
      Printf.sprintf "prepared.entries=%d" c.Plan_cache.entries;
      Printf.sprintf "prepared.parsed_entries=%d" c.Plan_cache.parsed_entries;
      Printf.sprintf "prepared.hits=%d" c.Plan_cache.hits;
      Printf.sprintf "prepared.misses=%d" c.Plan_cache.misses;
      Printf.sprintf "prepared.unplanned=%d" c.Plan_cache.unplanned;
      Printf.sprintf "prepared.invalidations=%d" c.Plan_cache.invalidations;
      Printf.sprintf "prepared.evictions=%d" c.Plan_cache.evictions;
      Printf.sprintf "plans.cached=%d" (Coral.Engine.plan_cache_size eng);
      Printf.sprintf "plans.hits=%d" plan_hits;
      Printf.sprintf "plans.misses=%d" plan_misses;
      Printf.sprintf "maintenance.enabled=%d"
        (if Coral.Engine.maintenance_enabled eng then 1 else 0);
      Printf.sprintf "maintenance.predicates=%d"
        (match Coral.Engine.maintenance_info eng with Some (n, _) -> n | None -> 0);
      Printf.sprintf "maintenance.refreshes=%d"
        (match Coral.Engine.maintenance_info eng with Some (_, r) -> r | None -> 0);
      Printf.sprintf "maintenance.fallback_preds=%d"
        (List.length (Coral.Engine.maintenance_fallbacks eng));
      Printf.sprintf "maintenance.inserts=%d" (Atomic.get store.maint_inserts);
      Printf.sprintf "maintenance.retracts=%d" (Atomic.get store.maint_retracts);
      Printf.sprintf "maintenance.derived=%d" (Atomic.get store.maint_derived);
      Printf.sprintf "maintenance.deleted=%d" (Atomic.get store.maint_deleted);
      Printf.sprintf "maintenance.rederived=%d" (Atomic.get store.maint_rederived);
      Printf.sprintf "maintenance.fallback_updates=%d" (Atomic.get store.maint_fallback);
      Printf.sprintf "engine.derivations=%d" derivations;
      Printf.sprintf "engine.duplicates=%d" duplicates;
      Printf.sprintf "engine.scans=%d" scans
    ]
  in
  (* ... the spaced forms below are legacy aliases, kept one release *)
  let legacy_lines =
    [ Printf.sprintf "server: requests=%d errors=%d timeouts=%d sessions=%d"
        (Atomic.get store.requests) (Atomic.get store.errors) (Atomic.get store.timeouts)
        (Atomic.get store.sessions);
      Printf.sprintf "prepared: entries=%d hits=%d misses=%d invalidations=%d"
        c.Plan_cache.entries c.Plan_cache.hits c.Plan_cache.misses c.Plan_cache.invalidations;
      Printf.sprintf "plans: cached=%d hits=%d misses=%d" (Coral.Engine.plan_cache_size eng)
        plan_hits plan_misses
    ]
  in
  let engine_lines =
    Format.asprintf "%a" Coral.Engine.pp_stats eng
    |> String.split_on_char '\n'
    |> List.filter (fun l -> String.trim l <> "")
  in
  Protocol.ok (List.map (fun l -> Protocol.Txt l) (dotted @ legacy_lines @ engine_lines))

(* ------------------------------------------------------------------ *)
(* Operational introspection: ps / kill / events                       *)
(* ------------------------------------------------------------------ *)

(* These three are served WITHOUT the store lock (see [handle]) — their
   whole point is to observe and cancel a query that is holding it. *)

let clip_query s = if String.length s <= 120 then s else String.sub s 0 117 ^ "..."

let ps_line (s : Query_log.snapshot) =
  Protocol.Txt
    (Printf.sprintf
       "id=%d session=%d kind=%s age_ms=%d iter=%d derivations=%d delta=%d workers=%d deadline_ms=%d%s%s%s%s query=%s"
       s.Query_log.s_id s.Query_log.s_session s.Query_log.s_kind
       (s.Query_log.s_age_ns / 1_000_000)
       s.Query_log.s_iterations s.Query_log.s_derivations s.Query_log.s_last_delta
       s.Query_log.s_workers s.Query_log.s_deadline_ms
       (if s.Query_log.s_epoch > 0 then Printf.sprintf " epoch=%d" s.Query_log.s_epoch else "")
       (if s.Query_log.s_adorned = "" then "" else " adorned=" ^ s.Query_log.s_adorned)
       (if s.Query_log.s_lanes = [||] then ""
        else
          " lanes="
          ^ String.concat "/"
              (Array.to_list (Array.map string_of_int s.Query_log.s_lanes)))
       (if s.Query_log.s_killed then " killed=pending" else "")
       (clip_query s.Query_log.s_text))

let do_ps _t =
  let snaps = Query_log.active () in
  Protocol.ok
    ~detail:(Printf.sprintf "%d active" (List.length snaps))
    (List.map ps_line snaps)

let do_kill _t qid =
  if Query_log.kill qid then
    Protocol.ok ~detail:(Printf.sprintf "kill signalled for query %d" qid) []
  else Protocol.err Protocol.Eval (Printf.sprintf "no active query with id %d" qid)

(* Operator degrade/restore: like ps/kill/events these are served
   without the store lock — flipping to read-only must work while a
   stuck mutation holds the writer lane. *)
let do_degrade t reason =
  enter_degraded t.store (Forced reason);
  Protocol.ok ~detail:(Printf.sprintf "degraded (read-only): %s" reason) []

let do_restore t =
  let store = t.store in
  Mutex.lock store.dlock;
  let was = store.degraded in
  store.degraded <- Healthy;
  Mutex.unlock store.dlock;
  (match was with
  | Healthy -> ()
  | _ -> Query_log.Events.log ~kind:"restore" [ "mode", Json.Str "operator" ]);
  Protocol.ok
    ~detail:
      (match was with
      | Healthy -> "store was not degraded"
      | _ -> "restored: mutations resume")
    []

let do_events _t n =
  let lines = Query_log.Events.recent n in
  Protocol.ok
    ~detail:
      (Printf.sprintf "%d of %d event%s" (List.length lines) (Query_log.Events.total ())
         (if Query_log.Events.total () = 1 then "" else "s"))
    (List.map (fun l -> Protocol.Txt l) lines)

(* [spans <tid>]: the span-ring slice stamped with one trace id, one
   JSON object per txt line — what a router pulls from each worker to
   stitch a cross-process trace.  Ring-local, no store lock. *)
let do_spans _t tid =
  let spans = Obs.Span.matching tid in
  Protocol.ok
    ~detail:(Printf.sprintf "%d span%s" (List.length spans) (if List.length spans = 1 then "" else "s"))
    (List.map (fun s -> Protocol.Txt (Obs.Span.to_json s)) spans)

(* [trace <tid>] on a plain (non-router) server: a single-lane Chrome
   trace of this process's matching spans.  The router overrides this
   with the stitched multi-process version. *)
let do_trace _t tid =
  if tid = "last" then
    Protocol.err Protocol.Cluster "trace last: only a coral_router tracks the last trace"
  else begin
    let spans = Obs.Span.matching tid in
    if spans = [] then
      Protocol.err Protocol.Eval (Printf.sprintf "no spans recorded for trace %s" tid)
    else begin
      let json = Obs.Span.to_chrome_json_lanes [ "server", spans ] in
      let lines = String.split_on_char '\n' json |> List.filter (fun l -> l <> "") in
      Protocol.ok
        ~detail:(Printf.sprintf "%d spans" (List.length spans))
        (List.map (fun l -> Protocol.Txt l) lines)
    end
  end

(* ------------------------------------------------------------------ *)
(* Prometheus text exposition                                          *)
(* ------------------------------------------------------------------ *)

(* Store-owned values are rendered at scrape time (several stores can
   live in one process, e.g. under test, so they are not registered in
   the global metric registry); everything registered — phase/latency
   histograms, storage counters — is appended after.  Reads are atomic
   or internally-mutexed loads, safe without the store lock. *)
let metrics_text store =
  let buf = Buffer.create 4096 in
  Obs.prometheus_sample buf ~kind:"counter" "server.requests" (Atomic.get store.requests);
  Obs.prometheus_sample buf ~kind:"counter" "server.errors" (Atomic.get store.errors);
  Obs.prometheus_sample buf ~kind:"counter" "server.timeouts" (Atomic.get store.timeouts);
  Obs.prometheus_sample buf ~kind:"gauge" "server.sessions" (Atomic.get store.sessions);
  (* overload protection: the degraded flag, shed/reject counters and
     the budget-kill count (coral_degraded, coral_shed_total, ...) *)
  Obs.prometheus_sample buf ~kind:"gauge" "degraded" (if is_degraded store then 1 else 0);
  Obs.prometheus_sample buf ~kind:"counter" "shed.total"
    (Admission.shed store.admission + Admission.busy_rejects store.admission);
  Obs.prometheus_sample buf ~kind:"counter" "busy.rejects"
    (Admission.busy_rejects store.admission);
  Obs.prometheus_sample buf ~kind:"gauge" "inflight.requests"
    (Admission.inflight store.admission);
  Obs.prometheus_sample buf ~kind:"counter" "budget.kills" (Atomic.get store.budget_kills);
  (* wire volume (coral_bytes_read_total / coral_bytes_written_total):
     client traffic plus, on a cluster worker, the delta exchange *)
  Obs.prometheus_sample buf ~kind:"counter" "bytes.read_total" (Atomic.get store.bytes_read);
  Obs.prometheus_sample buf ~kind:"counter" "bytes.written_total"
    (Atomic.get store.bytes_written);
  (* operational gauges + build/process identity *)
  Obs.prometheus_sample buf ~kind:"gauge" "active_queries" (Query_log.active_count ());
  Obs.prometheus_sample buf ~kind:"gauge" "sessions" (Atomic.get store.sessions);
  Obs.prometheus_sample buf ~kind:"counter" "events.logged" (Query_log.Events.total ());
  (* the snapshot subsystem: the published epoch and how many readers
     hold a pinned version right now *)
  Obs.prometheus_sample buf ~kind:"gauge" "snapshot.epoch" (Snapshot.epoch store.snap);
  Obs.prometheus_sample buf ~kind:"gauge" "pinned.snapshots" (Snapshot.pinned_count ());
  Buffer.add_string buf "# TYPE coral_build_info gauge\n";
  Buffer.add_string buf
    (Printf.sprintf "coral_build_info{version=%S,ocaml=%S} 1\n" Obs.version Sys.ocaml_version);
  Obs.prometheus_sample buf ~kind:"gauge" "process_start_time_seconds"
    (Obs.process_start_ns / 1_000_000_000);
  Obs.prometheus_sample buf ~kind:"gauge" "process_uptime_seconds"
    ((Obs.now_ns () - Obs.process_start_ns) / 1_000_000_000);
  let c = Plan_cache.stats store.cache in
  Obs.prometheus_sample buf ~kind:"gauge" "prepared.entries" c.Plan_cache.entries;
  Obs.prometheus_sample buf ~kind:"gauge" "prepared.parsed_entries" c.Plan_cache.parsed_entries;
  Obs.prometheus_sample buf ~kind:"counter" "prepared.hits" c.Plan_cache.hits;
  Obs.prometheus_sample buf ~kind:"counter" "prepared.misses" c.Plan_cache.misses;
  Obs.prometheus_sample buf ~kind:"counter" "prepared.unplanned" c.Plan_cache.unplanned;
  Obs.prometheus_sample buf ~kind:"counter" "prepared.invalidations" c.Plan_cache.invalidations;
  Obs.prometheus_sample buf ~kind:"counter" "prepared.evictions" c.Plan_cache.evictions;
  let eng = Coral.engine store.sdb in
  let plan_hits, plan_misses = Coral.plan_cache_stats store.sdb in
  Obs.prometheus_sample buf ~kind:"gauge" "plans.cached" (Coral.Engine.plan_cache_size eng);
  Obs.prometheus_sample buf ~kind:"counter" "plans.hits" plan_hits;
  Obs.prometheus_sample buf ~kind:"counter" "plans.misses" plan_misses;
  let derivations, duplicates, scans = Coral.Relation.global_stats () in
  Obs.prometheus_sample buf ~kind:"counter" "engine.derivations" derivations;
  Obs.prometheus_sample buf ~kind:"counter" "engine.duplicates" duplicates;
  Obs.prometheus_sample buf ~kind:"counter" "engine.scans" scans;
  (* incremental view maintenance (the coral_maintenance_ family):
     update volume and the delta-propagation work it caused *)
  Obs.prometheus_sample buf ~kind:"gauge" "maintenance.enabled"
    (if Coral.Engine.maintenance_enabled eng then 1 else 0);
  Obs.prometheus_sample buf ~kind:"gauge" "maintenance.predicates"
    (match Coral.Engine.maintenance_info eng with Some (n, _) -> n | None -> 0);
  Obs.prometheus_sample buf ~kind:"counter" "maintenance.refreshes"
    (match Coral.Engine.maintenance_info eng with Some (_, r) -> r | None -> 0);
  Obs.prometheus_sample buf ~kind:"counter" "maintenance.inserts"
    (Atomic.get store.maint_inserts);
  Obs.prometheus_sample buf ~kind:"counter" "maintenance.retracts"
    (Atomic.get store.maint_retracts);
  Obs.prometheus_sample buf ~kind:"counter" "maintenance.derived"
    (Atomic.get store.maint_derived);
  Obs.prometheus_sample buf ~kind:"counter" "maintenance.deleted"
    (Atomic.get store.maint_deleted);
  Obs.prometheus_sample buf ~kind:"counter" "maintenance.rederived"
    (Atomic.get store.maint_rederived);
  Obs.prometheus_sample buf ~kind:"counter" "maintenance.fallback_updates"
    (Atomic.get store.maint_fallback);
  Buffer.add_string buf (Obs.prometheus ());
  Buffer.contents buf

let do_metrics t =
  let lines =
    metrics_text t.store |> String.split_on_char '\n' |> List.filter (fun l -> l <> "")
  in
  Protocol.ok (List.map (fun l -> Protocol.Txt l) lines)

let do_relations t =
  let rels = Coral.Engine.list_relations (Coral.engine t.store.sdb) in
  Protocol.ok
    (List.map (fun (name, n) -> Protocol.Txt (Printf.sprintf "%s %d" name n)) rels)

let do_modules t =
  let ms = Coral.Engine.list_modules (Coral.engine t.store.sdb) in
  Protocol.ok (List.map (fun m -> Protocol.Txt m) ms)

let dispatch t (req : Protocol.request) =
  match req with
  | Protocol.Hello -> Protocol.ok ~detail:"coral 1" []
  | Protocol.Ping -> Protocol.ok ~detail:"pong" []
  | Protocol.Set_timeout ms ->
    t.deadline_ms <- ms;
    Protocol.ok
      ~detail:(if ms = 0 then "timeout disabled" else Printf.sprintf "timeout %dms" ms)
      []
  | Protocol.Set_limit (kind, n) ->
    let name =
      match kind with
      | Protocol.Tuples ->
        t.limit_tuples <- n;
        "tuples"
      | Protocol.Bytes ->
        t.limit_bytes <- n;
        "bytes"
    in
    Protocol.ok
      ~detail:
        (if n = 0 then Printf.sprintf "limit %s disabled" name
         else Printf.sprintf "limit %s %d" name n)
      []
  | Protocol.Query text -> do_query t text
  | Protocol.Consult text -> do_consult t text
  | Protocol.Insert text -> do_insert t text
  | Protocol.Retract text -> do_retract t text
  | Protocol.Explain text -> do_explain t text
  | Protocol.Explain_analyze text -> do_explain_analyze t text
  | Protocol.Why text -> do_why t text
  (* introspection over the master engine's tables: cheap, serialized
     against writers so iteration never races a mutation *)
  | Protocol.Stats -> locked t.store (fun () -> do_stats t)
  | Protocol.Metrics -> do_metrics t
  | Protocol.Relations -> locked t.store (fun () -> do_relations t)
  | Protocol.Modules -> locked t.store (fun () -> do_modules t)
  | Protocol.Ps | Protocol.Kill _ | Protocol.Events _ | Protocol.Degrade _
  | Protocol.Restore | Protocol.Spans _ | Protocol.Trace _ ->
    (* handled lock-free in [handle]; unreachable through it *)
    Protocol.err Protocol.Proto "introspection command routed incorrectly"
  | Protocol.Dstat ->
    (* only a router (which intercepts dstat before the session layer)
       has per-round fixpoint statistics to report *)
    Protocol.err Protocol.Cluster
      "dstat: no distributed fixpoint here; ask the coral_router"
  (* Cluster control plane: delegated to the installed dist worker.
     These bypass the admission gate ([evaluating] below) — a barrier
     or delta blocked behind the in-flight cap would deadlock the
     coordinator's round — and do their own locking (the write lane
     for barrier steps, a private buffer mutex for deltas). *)
  | Protocol.Shard _ | Protocol.Dprog _ | Protocol.Delta _ | Protocol.Barrier _
  | Protocol.Dreset -> begin
    match t.store.dist_handler with
    | Some h -> h req
    | None ->
      Protocol.err Protocol.Cluster
        "not a cluster worker: no distributed handler installed"
  end
  | Protocol.Quit -> Protocol.ok ~detail:"bye" []

(* Requests that evaluate (or mutate) and therefore count against the
   in-flight admission cap.  Introspection, settings and the liveness
   probes stay exempt so an operator can always see and steer an
   overloaded server. *)
let evaluating = function
  | Protocol.Query _ | Protocol.Consult _ | Protocol.Insert _ | Protocol.Retract _
  | Protocol.Explain_analyze _ | Protocol.Why _ -> true
  | _ -> false

let handle t req =
  match req with
  (* Introspection never queues behind the engine lock: ps/kill/events
     (and the degrade/restore switch) must answer while another
     connection's query is evaluating. *)
  | Protocol.Ps -> do_ps t
  | Protocol.Kill qid -> do_kill t qid
  | Protocol.Events n -> do_events t n
  | Protocol.Degrade reason -> do_degrade t reason
  | Protocol.Restore -> do_restore t
  | Protocol.Spans tid -> do_spans t tid
  | Protocol.Trace tid -> do_trace t tid
  | _ ->
  let store = t.store in
  let t0 = Obs.now_ns () in
  Fun.protect
    ~finally:(fun () ->
      let dt = Obs.now_ns () - t0 in
      Obs.Histogram.observe_ns h_request dt;
      match req with
      | Protocol.Query _ -> Obs.Histogram.observe_ns h_query dt
      | _ -> ())
  @@ fun () ->
  Atomic.incr store.requests;
  let response =
    try
      if evaluating req then begin
        match Admission.admit store.admission with
        | `Busy retry ->
          Query_log.Events.log ~kind:"shed"
            [ "session", Json.Int t.sid;
              "scope", Json.Str "request";
              "retry_after_ms", Json.Int retry
            ];
          Protocol.busy ~retry_after_ms:retry
            (Printf.sprintf "server at capacity (%d requests in flight); retry later"
               (Admission.config store.admission).Admission.max_inflight)
        | `Admitted ->
          Fun.protect
            ~finally:(fun () -> Admission.release store.admission)
            (fun () -> dispatch t req)
      end
      else dispatch t req
    with
    | Degraded reason ->
      Protocol.err Protocol.Readonly
        (Printf.sprintf "store is read-only (%s); mutations are refused until restore"
           reason)
    | Coral.Cancelled ->
      Atomic.incr store.timeouts;
      Protocol.err Protocol.Timeout
        (Printf.sprintf "deadline of %dms exceeded; evaluation abandoned" t.deadline_ms)
    | Coral.Engine.Engine_error e -> Protocol.err Protocol.Eval e
    | Coral.Builtin.Eval_error e -> Protocol.err Protocol.Eval e
    | Coral_eval.Fixpoint.Not_modularly_stratified e ->
      Protocol.err Protocol.Eval ("not modularly stratified: " ^ e)
    (* Storage faults: the request fails with IOERR but the session
       (and the server) stays alive — a corrupt page quarantines
       itself, it does not take the service down. *)
    | Coral_storage.Disk.Fault { transient; op; path; detail } ->
      Protocol.err Protocol.Ioerr
        (Printf.sprintf "%s I/O fault during %s on %s: %s"
           (if transient then "transient" else "persistent")
           op (Filename.basename path) detail)
    | Coral_storage.Disk.Corrupt { path; pid; detail } ->
      Protocol.err Protocol.Ioerr
        (Printf.sprintf "corrupt page %d in %s: %s" pid (Filename.basename path) detail)
    | Coral_storage.Disk.Crashed msg ->
      Protocol.err Protocol.Ioerr ("storage unavailable (simulated crash): " ^ msg)
    | Coral_storage.Recovery.Fatal_corruption msg ->
      Protocol.err Protocol.Ioerr ("unrecoverable corruption: " ^ msg)
    | Coral_storage.Buffer_pool.Pool_exhausted ->
      Protocol.err Protocol.Ioerr "buffer pool exhausted: all frames pinned"
    | Coral_storage.Codec.Unstorable msg -> Protocol.err Protocol.Eval msg
    | Failure e -> Protocol.err Protocol.Eval e
    | Stack_overflow -> Protocol.err Protocol.Eval "stack overflow during evaluation"
  in
  (match response.Protocol.status with
  | Error _ -> Atomic.incr store.errors
  | Ok _ -> ());
  response
