type limit_kind = Tuples | Bytes

(* Two-phase quiescence barrier (distributed fixpoint): [step] runs one
   global round of local evaluation + delta shipping, [promote] moves
   the received/buffered deltas into the stored relations. *)
type barrier_phase = Step | Promote

type request =
  | Hello
  | Ping
  | Set_timeout of int
  | Set_limit of limit_kind * int
  | Degrade of string
  | Restore
  | Query of string
  | Consult of string
  | Insert of string
  | Retract of string  (** remove stored facts; DRed maintenance applies *)
  | Explain of string
  | Explain_analyze of string
  | Why of string
  | Stats
  | Metrics
  | Relations
  | Modules
  | Ps
  | Kill of int
  | Events of int
  (* cluster control plane (a worker under a coral_router front end) *)
  | Shard of { index : int; count : int; key : int; peers : string list }
  | Dprog of string  (** distributed program text (rules to evaluate locally) *)
  | Delta of string  (** a batch of fact lines shipped from a peer shard *)
  | Barrier of barrier_phase * int  (** barrier step|promote <round> *)
  | Dreset
  (* observability plane *)
  | Spans of string  (** span slice for one trace id, as JSON lines *)
  | Dstat  (** per-round stats of the last distributed fixpoint *)
  | Trace of string  (** stitched Chrome trace for a trace id (or "last") *)
  | Quit

type error_code =
  | Parse
  | Eval
  | Timeout
  | Proto
  | Too_big
  | Ioerr
  | Killed
  | Busy
  | Resource
  | Readonly
  | Unavail
  | Cluster

type payload =
  | Ans of string
  | Txt of string

type response = {
  payload : payload list;
  status : (string, error_code * string) result;
}

let max_line_bytes = 64 * 1024
let max_payload_bytes = 1024 * 1024

let code_string = function
  | Parse -> "PARSE"
  | Eval -> "EVAL"
  | Timeout -> "TIMEOUT"
  | Proto -> "PROTO"
  | Too_big -> "TOOBIG"
  | Ioerr -> "IOERR"
  | Killed -> "KILLED"
  | Busy -> "BUSY"
  | Resource -> "RESOURCE"
  | Readonly -> "READONLY"
  | Unavail -> "UNAVAIL"
  | Cluster -> "CLUSTER"

(* Inverse of [code_string]; the router uses it to re-raise a worker's
   error under its original code instead of wrapping everything in
   CLUSTER. *)
let code_of_string = function
  | "PARSE" -> Some Parse
  | "EVAL" -> Some Eval
  | "TIMEOUT" -> Some Timeout
  | "PROTO" -> Some Proto
  | "TOOBIG" -> Some Too_big
  | "IOERR" -> Some Ioerr
  | "KILLED" -> Some Killed
  | "BUSY" -> Some Busy
  | "RESOURCE" -> Some Resource
  | "READONLY" -> Some Readonly
  | "UNAVAIL" -> Some Unavail
  | "CLUSTER" -> Some Cluster
  | _ -> None

let one_line s =
  let b = Buffer.create (String.length s) in
  let pending_sep = ref false in
  String.iter
    (fun c ->
      match c with
      | '\n' -> if Buffer.length b > 0 then pending_sep := true
      | '\r' -> ()
      | c ->
        let c = if Char.code c < 32 then ' ' else c in
        if !pending_sep then begin
          pending_sep := false;
          Buffer.add_string b "; "
        end;
        Buffer.add_char b c)
    s;
  Buffer.contents b

(* Split a request line into command and argument at the first run of
   spaces; the argument keeps its internal spacing. *)
let split_cmd line =
  match String.index_opt line ' ' with
  | None -> line, ""
  | Some i ->
    let rest = String.sub line (i + 1) (String.length line - i - 1) in
    String.sub line 0 i, String.trim rest

(* Commands that may carry a trailing " tid=<id>" trace-context token
   on the wire.  The list is a whitelist so free-text arguments
   (consult programs, insert facts) can never be mangled by the
   stripper; [consult#] is safe — its free text travels in the framed
   payload, never on the command line. *)
let tid_commands =
  [ "query"; "shard"; "consult#"; "dprog#"; "delta#"; "barrier"; "dreset" ]

let valid_tid s =
  let n = String.length s in
  n > 0 && n <= 64
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' -> true | _ -> false)
       s

(* [split_tid line] strips a trailing trace-id token from a request
   line, returning the stripped line and the id.  Lines without one
   (or with a malformed one) come back untouched — old clients and
   plain servers interoperate unchanged. *)
let split_tid line =
  let trimmed = String.trim line in
  let cmd, _ = split_cmd trimmed in
  if not (List.mem cmd tid_commands) then line, None
  else begin
    match String.rindex_opt trimmed ' ' with
    | None -> line, None
    | Some i ->
      let last = String.sub trimmed (i + 1) (String.length trimmed - i - 1) in
      if String.starts_with ~prefix:"tid=" last then begin
        let id = String.sub last 4 (String.length last - 4) in
        if valid_tid id then String.trim (String.sub trimmed 0 i), Some id
        else line, None
      end
      else line, None
  end

let parse_request line =
  (* Drop any trace token here too, so callers that never look at the
     trace context (in-process harnesses, old loops) still parse
     "dprog# 123 tid=x" correctly. *)
  let line, _ = split_tid line in
  let line = String.trim line in
  let cmd, arg = split_cmd line in
  let need_arg k = if arg = "" then `Bad (cmd ^ " expects an argument") else k () in
  let no_arg req = if arg = "" then `Req req else `Bad (cmd ^ " takes no argument") in
  match cmd with
  | "" -> `Bad "empty request"
  | "hello" -> no_arg Hello
  | "ping" -> no_arg Ping
  | "timeout" ->
    need_arg (fun () ->
        match int_of_string_opt arg with
        | Some ms when ms >= 0 -> `Req (Set_timeout ms)
        | _ -> `Bad "timeout expects a non-negative integer (milliseconds)")
  | "limit" ->
    need_arg (fun () ->
        let kind, n =
          match String.index_opt arg ' ' with
          | None -> arg, None
          | Some i ->
            ( String.sub arg 0 i,
              int_of_string_opt
                (String.trim (String.sub arg (i + 1) (String.length arg - i - 1))) )
        in
        match kind, n with
        | "tuples", Some n when n >= 0 -> `Req (Set_limit (Tuples, n))
        | "bytes", Some n when n >= 0 -> `Req (Set_limit (Bytes, n))
        | ("tuples" | "bytes"), _ ->
          `Bad "limit expects a non-negative integer (0 = none)"
        | _ -> `Bad "limit expects: limit tuples <n> | limit bytes <n>")
  | "degrade" ->
    (* optional reason; recorded and echoed to rejected writers *)
    `Req (Degrade (if arg = "" then "operator request" else arg))
  | "restore" -> no_arg Restore
  | "query" -> need_arg (fun () -> `Req (Query arg))
  | "consult" -> need_arg (fun () -> `Req (Consult arg))
  | "consult#" ->
    need_arg (fun () ->
        match int_of_string_opt arg with
        | Some n when n >= 0 -> `Consult_payload n
        | _ -> `Bad "consult# expects a byte count")
  | "insert" -> need_arg (fun () -> `Req (Insert arg))
  | "retract" -> need_arg (fun () -> `Req (Retract arg))
  | "explain" ->
    need_arg (fun () ->
        (* "explain analyze <query>": run and annotate with actuals *)
        if String.starts_with ~prefix:"analyze " arg then begin
          let q = String.trim (String.sub arg 8 (String.length arg - 8)) in
          if q = "" then `Bad "explain analyze expects a query"
          else `Req (Explain_analyze q)
        end
        else if arg = "analyze" then `Bad "explain analyze expects a query"
        else `Req (Explain arg))
  | "why" -> need_arg (fun () -> `Req (Why arg))
  | "stats" -> no_arg Stats
  | "metrics" -> no_arg Metrics
  | "relations" -> no_arg Relations
  | "modules" -> no_arg Modules
  | "ps" -> no_arg Ps
  | "kill" ->
    need_arg (fun () ->
        match int_of_string_opt arg with
        | Some qid when qid > 0 -> `Req (Kill qid)
        | _ -> `Bad "kill expects a query id (see ps)")
  | "events" ->
    if arg = "" then `Req (Events 20)
    else begin
      match int_of_string_opt arg with
      | Some n when n > 0 -> `Req (Events n)
      | _ -> `Bad "events expects a positive count"
    end
  | "quit" -> no_arg Quit
  (* cluster control plane: shard configuration, the shipped program,
     delta batches and the two-phase fixpoint barrier *)
  | "shard" ->
    need_arg (fun () ->
        match String.split_on_char ' ' arg |> List.filter (fun s -> s <> "") with
        | index :: count :: key :: peers -> begin
          match int_of_string_opt index, int_of_string_opt count, int_of_string_opt key with
          | Some i, Some n, Some k
            when n >= 1 && i >= 0 && i < n && k >= 0 && List.length peers = n ->
            `Req (Shard { index = i; count = n; key = k; peers })
          | _ ->
            `Bad
              "shard expects: shard <index> <count> <key-arg> <addr0> ... \
               <addrN-1> (0 <= index < count, one address per shard)"
        end
        | _ -> `Bad "shard expects: shard <index> <count> <key-arg> <addr...>")
  | "dprog#" ->
    need_arg (fun () ->
        match int_of_string_opt arg with
        | Some n when n >= 0 -> `Dprog_payload n
        | _ -> `Bad "dprog# expects a byte count")
  | "delta#" ->
    need_arg (fun () ->
        match int_of_string_opt arg with
        | Some n when n >= 0 -> `Delta_payload n
        | _ -> `Bad "delta# expects a byte count")
  | "barrier" ->
    need_arg (fun () ->
        match String.split_on_char ' ' arg |> List.filter (fun s -> s <> "") with
        | [ phase; round ] -> begin
          match
            ( (match phase with
              | "step" -> Some Step
              | "promote" -> Some Promote
              | _ -> None),
              int_of_string_opt round )
          with
          | Some p, Some r when r >= 1 -> `Req (Barrier (p, r))
          | _ -> `Bad "barrier expects: barrier step|promote <round>"
        end
        | _ -> `Bad "barrier expects: barrier step|promote <round>")
  | "dreset" -> no_arg Dreset
  (* observability plane *)
  | "spans" ->
    need_arg (fun () ->
        if valid_tid arg then `Req (Spans arg) else `Bad "spans expects a trace id")
  | "dstat" -> no_arg Dstat
  | "trace" ->
    need_arg (fun () ->
        if arg = "last" || valid_tid arg then `Req (Trace arg)
        else `Bad "trace expects a trace id or 'last'")
  | _ -> `Bad (Printf.sprintf "unknown command %S" cmd)

let ok ?(detail = "") payload = { payload; status = Ok detail }
let err code msg = { payload = []; status = Error (code, one_line msg) }

(* Overload shedding: [err BUSY <retry-after-ms> <reason>] — the first
   token of the message is machine-readable backoff advice. *)
let busy ~retry_after_ms msg =
  err Busy (Printf.sprintf "%d %s" (max 0 retry_after_ms) msg)

let render buf r =
  List.iter
    (fun p ->
      (match p with
      | Ans s -> Buffer.add_string buf ("ans " ^ one_line s)
      | Txt s -> Buffer.add_string buf ("txt " ^ one_line s));
      Buffer.add_char buf '\n')
    r.payload;
  (match r.status with
  | Ok "" -> Buffer.add_string buf "ok"
  | Ok detail -> Buffer.add_string buf ("ok " ^ one_line detail)
  | Error (code, msg) ->
    Buffer.add_string buf (Printf.sprintf "err %s %s" (code_string code) (one_line msg)));
  Buffer.add_char buf '\n'

let is_status line =
  line = "ok"
  || String.starts_with ~prefix:"ok " line
  || String.starts_with ~prefix:"err " line

(* ------------------------------------------------------------------ *)
(* Channel framing helpers                                            *)
(* ------------------------------------------------------------------ *)

(* Shared by the server's connection loop, the router's and the shard
   client's — one definition of "a protocol line" on both sides of
   every socket. *)

exception Line_too_long

(* Read one LF-terminated line, refusing lines over the protocol limit
   (a peer streaming an unframed megabyte must not buffer-bloat the
   reader).  CR before LF is stripped; None on EOF with nothing read. *)
let read_line_capped ic =
  let buf = Buffer.create 128 in
  let rec go () =
    match In_channel.input_char ic with
    | None -> if Buffer.length buf = 0 then None else Some (Buffer.contents buf)
    | Some '\n' -> Some (Buffer.contents buf)
    | Some c ->
      if Buffer.length buf >= max_line_bytes then raise Line_too_long;
      Buffer.add_char buf c;
      go ()
  in
  match go () with
  | None -> None
  | Some line ->
    let n = String.length line in
    if n > 0 && line.[n - 1] = '\r' then Some (String.sub line 0 (n - 1)) else Some line

let write_response oc response =
  let buf = Buffer.create 256 in
  render buf response;
  Out_channel.output_string oc (Buffer.contents buf);
  Out_channel.flush oc;
  Buffer.length buf
