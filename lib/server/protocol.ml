type limit_kind = Tuples | Bytes

type request =
  | Hello
  | Ping
  | Set_timeout of int
  | Set_limit of limit_kind * int
  | Degrade of string
  | Restore
  | Query of string
  | Consult of string
  | Insert of string
  | Explain of string
  | Explain_analyze of string
  | Why of string
  | Stats
  | Metrics
  | Relations
  | Modules
  | Ps
  | Kill of int
  | Events of int
  | Quit

type error_code =
  | Parse
  | Eval
  | Timeout
  | Proto
  | Too_big
  | Ioerr
  | Killed
  | Busy
  | Resource
  | Readonly

type payload =
  | Ans of string
  | Txt of string

type response = {
  payload : payload list;
  status : (string, error_code * string) result;
}

let max_line_bytes = 64 * 1024
let max_payload_bytes = 1024 * 1024

let code_string = function
  | Parse -> "PARSE"
  | Eval -> "EVAL"
  | Timeout -> "TIMEOUT"
  | Proto -> "PROTO"
  | Too_big -> "TOOBIG"
  | Ioerr -> "IOERR"
  | Killed -> "KILLED"
  | Busy -> "BUSY"
  | Resource -> "RESOURCE"
  | Readonly -> "READONLY"

let one_line s =
  let b = Buffer.create (String.length s) in
  let pending_sep = ref false in
  String.iter
    (fun c ->
      match c with
      | '\n' -> if Buffer.length b > 0 then pending_sep := true
      | '\r' -> ()
      | c ->
        let c = if Char.code c < 32 then ' ' else c in
        if !pending_sep then begin
          pending_sep := false;
          Buffer.add_string b "; "
        end;
        Buffer.add_char b c)
    s;
  Buffer.contents b

(* Split a request line into command and argument at the first run of
   spaces; the argument keeps its internal spacing. *)
let split_cmd line =
  match String.index_opt line ' ' with
  | None -> line, ""
  | Some i ->
    let rest = String.sub line (i + 1) (String.length line - i - 1) in
    String.sub line 0 i, String.trim rest

let parse_request line =
  let line = String.trim line in
  let cmd, arg = split_cmd line in
  let need_arg k = if arg = "" then `Bad (cmd ^ " expects an argument") else k () in
  let no_arg req = if arg = "" then `Req req else `Bad (cmd ^ " takes no argument") in
  match cmd with
  | "" -> `Bad "empty request"
  | "hello" -> no_arg Hello
  | "ping" -> no_arg Ping
  | "timeout" ->
    need_arg (fun () ->
        match int_of_string_opt arg with
        | Some ms when ms >= 0 -> `Req (Set_timeout ms)
        | _ -> `Bad "timeout expects a non-negative integer (milliseconds)")
  | "limit" ->
    need_arg (fun () ->
        let kind, n =
          match String.index_opt arg ' ' with
          | None -> arg, None
          | Some i ->
            ( String.sub arg 0 i,
              int_of_string_opt
                (String.trim (String.sub arg (i + 1) (String.length arg - i - 1))) )
        in
        match kind, n with
        | "tuples", Some n when n >= 0 -> `Req (Set_limit (Tuples, n))
        | "bytes", Some n when n >= 0 -> `Req (Set_limit (Bytes, n))
        | ("tuples" | "bytes"), _ ->
          `Bad "limit expects a non-negative integer (0 = none)"
        | _ -> `Bad "limit expects: limit tuples <n> | limit bytes <n>")
  | "degrade" ->
    (* optional reason; recorded and echoed to rejected writers *)
    `Req (Degrade (if arg = "" then "operator request" else arg))
  | "restore" -> no_arg Restore
  | "query" -> need_arg (fun () -> `Req (Query arg))
  | "consult" -> need_arg (fun () -> `Req (Consult arg))
  | "consult#" ->
    need_arg (fun () ->
        match int_of_string_opt arg with
        | Some n when n >= 0 -> `Consult_payload n
        | _ -> `Bad "consult# expects a byte count")
  | "insert" -> need_arg (fun () -> `Req (Insert arg))
  | "explain" ->
    need_arg (fun () ->
        (* "explain analyze <query>": run and annotate with actuals *)
        if String.starts_with ~prefix:"analyze " arg then begin
          let q = String.trim (String.sub arg 8 (String.length arg - 8)) in
          if q = "" then `Bad "explain analyze expects a query"
          else `Req (Explain_analyze q)
        end
        else if arg = "analyze" then `Bad "explain analyze expects a query"
        else `Req (Explain arg))
  | "why" -> need_arg (fun () -> `Req (Why arg))
  | "stats" -> no_arg Stats
  | "metrics" -> no_arg Metrics
  | "relations" -> no_arg Relations
  | "modules" -> no_arg Modules
  | "ps" -> no_arg Ps
  | "kill" ->
    need_arg (fun () ->
        match int_of_string_opt arg with
        | Some qid when qid > 0 -> `Req (Kill qid)
        | _ -> `Bad "kill expects a query id (see ps)")
  | "events" ->
    if arg = "" then `Req (Events 20)
    else begin
      match int_of_string_opt arg with
      | Some n when n > 0 -> `Req (Events n)
      | _ -> `Bad "events expects a positive count"
    end
  | "quit" -> no_arg Quit
  | _ -> `Bad (Printf.sprintf "unknown command %S" cmd)

let ok ?(detail = "") payload = { payload; status = Ok detail }
let err code msg = { payload = []; status = Error (code, one_line msg) }

(* Overload shedding: [err BUSY <retry-after-ms> <reason>] — the first
   token of the message is machine-readable backoff advice. *)
let busy ~retry_after_ms msg =
  err Busy (Printf.sprintf "%d %s" (max 0 retry_after_ms) msg)

let render buf r =
  List.iter
    (fun p ->
      (match p with
      | Ans s -> Buffer.add_string buf ("ans " ^ one_line s)
      | Txt s -> Buffer.add_string buf ("txt " ^ one_line s));
      Buffer.add_char buf '\n')
    r.payload;
  (match r.status with
  | Ok "" -> Buffer.add_string buf "ok"
  | Ok detail -> Buffer.add_string buf ("ok " ^ one_line detail)
  | Error (code, msg) ->
    Buffer.add_string buf (Printf.sprintf "err %s %s" (code_string code) (one_line msg)));
  Buffer.add_char buf '\n'

let is_status line =
  line = "ok"
  || String.starts_with ~prefix:"ok " line
  || String.starts_with ~prefix:"err " line
