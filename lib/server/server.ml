type listen =
  [ `Tcp of string * int
  | `Unix of string ]

type t = {
  fd : Unix.file_descr;
  bound_port : int;
  sock_path : string option;  (* Unix-domain socket file to unlink on shutdown *)
  sstore : Session.store;
  databases : Coral.Database.t list;
  mutable closed : bool;
  mutable accept_thread : Thread.t option;
}

(* A peer that disappears mid-reply must raise EPIPE/ECONNRESET in the
   writing thread, not deliver a process-killing SIGPIPE. *)
let ignore_sigpipe () =
  try ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore)
  with Invalid_argument _ | Sys_error _ -> ()

let write_response oc response = ignore (Protocol.write_response oc response)

(* One connection: read a request, execute it through the session,
   reply; leave on quit, EOF, oversized input or a socket error.
   Every byte in and out is credited to the store's wire counters. *)
let serve_connection ?reserved store client =
  let ic = Unix.in_channel_of_descr client in
  let oc = Unix.out_channel_of_descr client in
  let session = Session.create ?reserved store in
  let write r = Session.note_bytes_written store (Protocol.write_response oc r) in
  let rec loop () =
    match Protocol.read_line_capped ic with
    | None -> ()
    | Some line when String.trim line = "" ->
      Session.note_bytes_read store (String.length line + 1);
      loop ()
    | Some line -> begin
      Session.note_bytes_read store (String.length line + 1);
      (* A trailing tid= token installs the sender's trace context for
         this one request, so spans and events it records are stamped
         with the cluster-wide trace id.  Requests without one run
         with no context (exactly the pre-trace behavior). *)
      let _, wire_tid = Protocol.split_tid line in
      let handle req =
        Coral_obs.Obs.Trace.with_id wire_tid (fun () -> Session.handle session req)
      in
      (* byte-counted payload bodies: consult#, and the cluster's
         shipped program / delta batches *)
      let with_payload kind n build =
        if n > Protocol.max_payload_bytes then
          (* refuse without reading: the connection is closed rather
             than draining an oversized body *)
          write
            (Protocol.err Protocol.Too_big
               (Printf.sprintf "%s payload of %d bytes exceeds the %d byte limit" kind n
                  Protocol.max_payload_bytes))
        else begin
          match really_input_string ic n with
          | text ->
            Session.note_bytes_read store n;
            write (handle (build text));
            loop ()
          | exception End_of_file -> ()
        end
      in
      match Protocol.parse_request line with
      | `Bad msg ->
        write (Protocol.err Protocol.Proto msg);
        loop ()
      | `Consult_payload n -> with_payload "consult#" n (fun t -> Protocol.Consult t)
      | `Dprog_payload n -> with_payload "dprog#" n (fun t -> Protocol.Dprog t)
      | `Delta_payload n -> with_payload "delta#" n (fun t -> Protocol.Delta t)
      | `Req Protocol.Quit -> write (handle Protocol.Quit)
      | `Req req ->
        write (handle req);
        loop ()
    end
  in
  (try loop () with
  | Protocol.Line_too_long ->
    (try
       write
         (Protocol.err Protocol.Too_big
            (Printf.sprintf "request line exceeds %d bytes" Protocol.max_line_bytes))
     with Sys_error _ | Unix.Unix_error _ -> ())
  | Sys_error _ | End_of_file -> ()
  | Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
    (* client went away mid-reply: just drop the connection *)
    ()
  | Unix.Unix_error _ -> ());
  Session.close session;
  try Unix.close client with Unix.Unix_error _ -> ()

(* Shed one accepted connection: a single best-effort BUSY line, then
   close.  Runs inline on the accept thread — the reply is one short
   line into an empty socket buffer, so it cannot stall the loop. *)
let shed_client t client reason =
  Admission.note_shed (Session.admission t.sstore);
  Coral_obs.Query_log.Events.log ~kind:"shed"
    [ "scope", Coral_obs.Json.Str "connection"; "reason", Coral_obs.Json.Str reason ];
  let retry =
    (Admission.config (Session.admission t.sstore)).Admission.retry_after_ms
  in
  (try
     let oc = Unix.out_channel_of_descr client in
     write_response oc (Protocol.busy ~retry_after_ms:retry reason)
   with Sys_error _ | Unix.Unix_error _ | Out_of_memory -> ());
  try Unix.close client with Unix.Unix_error _ -> ()

(* The accept thread is the server: nothing it can encounter may kill
   it.  Descriptor exhaustion ([EMFILE]/[ENFILE]), a peer that reset
   before accept ([ECONNABORTED]), a failed [Thread.create] — each
   sheds at most the one affected client (with a BUSY line when there
   is a descriptor to write it to) and the loop keeps accepting. *)
let accept_loop t =
  while not t.closed do
    match Unix.accept t.fd with
    | client, _addr -> begin
      let adm = Session.admission t.sstore in
      let cap = (Admission.config adm).Admission.max_sessions in
      (* claim the slot here, atomically: a connect burst outruns the
         spawned threads, so counting inside the session would admit
         every connection in the burst *)
      if not (Session.try_reserve t.sstore ~cap) then
        shed_client t client (Printf.sprintf "server at capacity (%d connections)" cap)
      else begin
        match
          Thread.create
            (fun () ->
              (* last-resort catch: no exception may kill a connection
                 thread in a way that leaks the descriptor or poisons
                 the process *)
              try serve_connection ~reserved:true t.sstore client
              with _ -> ( try Unix.close client with Unix.Unix_error _ -> ()))
            ()
        with
        | (_ : Thread.t) -> ()
        | exception _ ->
          (* thread spawn failed (resource exhaustion): shed this one
             client, keep accepting *)
          Session.unreserve t.sstore;
          shed_client t client "cannot start a connection thread"
      end
    end
    | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL), _, _) -> t.closed <- true
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error (Unix.ECONNABORTED, _, _) ->
      (* the peer vanished between SYN and accept: not our problem *)
      ()
    | exception Unix.Unix_error ((Unix.EMFILE | Unix.ENFILE), _, _) ->
      (* out of descriptors: there is no fd to reply on, so the shed is
         silent; back off briefly so the loop does not spin while the
         connection that exhausted the table drains *)
      Admission.note_shed (Session.admission t.sstore);
      Coral_obs.Query_log.Events.log ~kind:"shed"
        [ "scope", Coral_obs.Json.Str "connection";
          "reason", Coral_obs.Json.Str "file descriptors exhausted"
        ];
      if not t.closed then Thread.delay 0.05
    | exception Unix.Unix_error (_, _, _) | exception Sys_error _ ->
      (* anything else transient (ENOMEM, EPERM from an exotic stack):
         never let it kill the accept thread *)
      if not t.closed then Thread.delay 0.01
  done

let start ?(consult = []) ?(databases = []) ?limits ~listen db =
  ignore_sigpipe ();
  List.iter (fun file -> Coral.consult_file db file) consult;
  let fd, bound_port =
    match listen with
    | `Tcp (host, port) ->
      let addr =
        match (Unix.getaddrinfo host (string_of_int port) [ Unix.AI_SOCKTYPE Unix.SOCK_STREAM ]) with
        | { Unix.ai_addr; _ } :: _ -> ai_addr
        | [] -> Unix.ADDR_INET (Unix.inet_addr_loopback, port)
      in
      let fd = Unix.socket (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      Unix.bind fd addr;
      Unix.listen fd 64;
      let bound =
        match Unix.getsockname fd with
        | Unix.ADDR_INET (_, p) -> p
        | _ -> port
      in
      fd, bound
    | `Unix path ->
      if Sys.file_exists path then Sys.remove path;
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX path);
      Unix.listen fd 64;
      fd, 0
  in
  let t =
    { fd;
      bound_port;
      sock_path = (match listen with `Unix path -> Some path | `Tcp _ -> None);
      sstore = Session.make_store ~databases ?limits db;
      databases;
      closed = false;
      accept_thread = None
    }
  in
  t.accept_thread <- Some (Thread.create (fun () -> accept_loop t) ());
  t

let port t = t.bound_port
let store t = t.sstore

let wait t =
  match t.accept_thread with
  | Some th -> Thread.join th
  | None -> ()

let shutdown t =
  if not t.closed then begin
    t.closed <- true;
    (try Unix.shutdown t.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
    (try Unix.close t.fd with Unix.Unix_error _ -> ());
    wait t;
    (* a Unix-domain socket leaves its file behind; remove it so a
       restart does not depend on the pre-bind cleanup *)
    (match t.sock_path with
    | Some path -> ( try Sys.remove path with Sys_error _ -> ())
    | None -> ());
    (* graceful: commit and release any attached persistent databases
       under the store lock so no request is mid-flight *)
    Session.locked t.sstore (fun () ->
        List.iter
          (fun db -> try Coral.Database.close db with _ -> ())
          t.databases)
  end
