(** The serving-layer wire protocol: line-oriented text framing.

    CORAL as described in the paper is a single-user interactive
    system; the serving layer turns it into a queryable service.  The
    protocol is deliberately minimal — one request per LF-terminated
    line, one status line per reply — so that a session can be driven
    by hand over [nc]/telnet, by the REPL's [--connect] mode, or by
    any scripting language.

    {2 Requests}

    {v
    hello                      protocol handshake
    ping                       liveness probe
    timeout <ms>               per-request deadline for this session (0 = none)
    query <text>               evaluate a query, e.g.  query path(1, Y)
    consult <text>             load single-line program text
    consult# <nbytes>          load <nbytes> of raw program text that follow
    insert <facts>             insert base facts, e.g.  insert edge(1, 2).
    explain <literal>          the optimizer's rewritten program
    explain analyze <literal>  run the query; rewritten program annotated
                               with per-rule counts and timings
    why <literal>              derivation trees for the answers
    stats                      server + engine statistics
    metrics                    Prometheus text exposition of all metrics
    relations                  base relations and cardinalities
    modules                    loaded modules
    limit tuples <n>           per-session derived-tuple budget (0 = none)
    limit bytes <n>            per-session bytes-estimate budget (0 = none)
    ps                         active queries with live progress and age
    kill <id>                  cooperatively cancel the active query <id>
    events [n]                 tail the newest n (default 20) event-log entries
    degrade [reason]           operator: flip the store read-only (mutations
                               answer err READONLY until restore)
    restore                    operator: clear degraded mode
    quit                       close the session
    v}

    Cluster control plane (sent by a [coral_router] front end to its
    [coral_server] workers; see DESIGN.md §13):

    {v
    shard <i> <n> <key> <addr...>  configure this worker as shard i of n,
                                   partitioned on argument <key>, with one
                                   peer address per shard
    dprog# <nbytes>                the distributed program (rules) follows
    delta# <nbytes>                a batch of fact lines from a peer shard
    barrier step <round>           run one local evaluation round and ship
                                   non-local deltas to their owners
    barrier promote <round>        promote buffered deltas into the stored
                                   relations
    dreset                         drop distributed derived state
    v}

    Observability plane (see DESIGN.md §15):

    {v
    spans <tid>                    span-ring slice stamped with trace id
                                   <tid>, one JSON object per txt line
    dstat                          per-round stats of the last distributed
                                   fixpoint (router; workers answer CLUSTER)
    trace <tid>|last               stitched Chrome trace_event JSON for a
                                   trace id, one chunk per txt line
    v}

    [query] and the cluster control-plane commands accept an optional
    trailing [tid=<id>] token carrying the caller's trace context.
    Servers that predate it (or [parse_request] callers that never
    look) strip and ignore it, so the extension is invisible to old
    deployments; a worker adopts the id for the request's spans and
    events, which is what makes cross-process trace stitching work.

    [ps], [kill], [events], [degrade] and [restore] are served without
    the store lock, so they work from any connection while another
    connection's query is evaluating.

    {2 Replies}

    Zero or more payload lines followed by exactly one status line:

    {v
    ans <bindings>             one per query answer ("X = 1, Y = 2" / "true")
    txt <line>                 one per report line (stats, explain, why, ...)
    ok [detail]                success
    err <CODE> <message>       failure; the session stays usable
    v}

    Error codes: [PARSE] (malformed CORAL text), [EVAL] (runtime
    evaluation error), [TIMEOUT] (request deadline exceeded), [PROTO]
    (malformed request line), [TOOBIG] (request exceeds the size
    limits; the server closes the connection), [IOERR] (a storage
    fault — disk I/O error, checksum mismatch, quarantined page — the
    request failed but the session stays usable), [KILLED] (an
    operator cancelled this request via [kill]; the session stays
    usable), [BUSY] (the server is at its admission cap and shed this
    request; the first message token is a suggested retry delay in
    milliseconds), [RESOURCE] (the query exceeded its derived-tuple or
    bytes-estimate budget; the session stays usable), [READONLY] (the
    store is degraded — by an operator or a storage fault — and
    refuses mutations; reads keep working), [UNAVAIL] (a cluster
    shard is unreachable; the router stays up and the query can be
    retried), [CLUSTER] (a cluster configuration or coordination
    error — e.g. a dist command on a server that is not a worker). *)

type limit_kind = Tuples | Bytes

type barrier_phase = Step | Promote
(** The two phases of the distributed fixpoint's quiescence barrier:
    [Step] evaluates one local round and ships non-local deltas;
    [Promote] moves the buffered deltas into the stored relations and
    reports how many were new.  Global fixpoint is reached when every
    worker promotes zero new tuples and shipped/received counts
    balance. *)

type request =
  | Hello
  | Ping
  | Set_timeout of int  (** milliseconds; 0 disables *)
  | Set_limit of limit_kind * int  (** per-session budget; 0 disables *)
  | Degrade of string  (** operator: force read-only, with a reason *)
  | Restore  (** operator: clear degraded mode *)
  | Query of string
  | Consult of string  (** program text *)
  | Insert of string  (** fact items *)
  | Retract of string  (** fact items to remove (DRed maintenance) *)
  | Explain of string
  | Explain_analyze of string
  | Why of string
  | Stats
  | Metrics
  | Relations
  | Modules
  | Ps
  | Kill of int  (** query id from [ps] *)
  | Events of int  (** newest n event-log entries *)
  | Shard of { index : int; count : int; key : int; peers : string list }
      (** configure this server as shard [index] of [count], hash
          partitioned on argument [key]; [peers] has one address per
          shard (entry [index] is this worker itself) *)
  | Dprog of string  (** the distributed program: rule text to run locally *)
  | Delta of string  (** a batch of fact lines shipped from a peer shard *)
  | Barrier of barrier_phase * int
  | Dreset  (** drop distributed derived state (before a fixpoint rerun) *)
  | Spans of string
      (** ship the span-ring slice stamped with this trace id, one
          single-line JSON object per [txt] line *)
  | Dstat  (** per-round statistics of the last distributed fixpoint *)
  | Trace of string
      (** stitched Chrome trace_event JSON for a trace id ([last] =
          the router's most recent distributed query) *)
  | Quit

type error_code =
  | Parse
  | Eval
  | Timeout
  | Proto
  | Too_big
  | Ioerr
  | Killed
  | Busy
  | Resource
  | Readonly
  | Unavail
  | Cluster

type payload =
  | Ans of string  (** a query answer row *)
  | Txt of string  (** a report line *)

type response = {
  payload : payload list;
  status : (string, error_code * string) result;  (** [Ok detail] / [Error (code, msg)] *)
}

val max_line_bytes : int
(** Longest accepted request line (64 KiB). *)

val max_payload_bytes : int
(** Largest accepted [consult#] payload (1 MiB). *)

val parse_request :
  string ->
  [ `Req of request
  | `Consult_payload of int
  | `Dprog_payload of int
  | `Delta_payload of int
  | `Bad of string ]
(** Parse one request line (the [`..._payload n] cases: the caller
    must read [n] more bytes and build [Consult]/[Dprog]/[Delta]
    itself).  A trailing [tid=<id>] trace token on a {!split_tid}
    command is stripped and ignored. *)

val split_tid : string -> string * string option
(** Strip a trailing [" tid=<id>"] trace-context token from a request
    line ([query], [shard], [dprog#], [delta#], [barrier], [dreset]
    only — free-text commands are never touched).  Returns the
    stripped line and the id; lines without a well-formed token come
    back unchanged, so pre-trace clients interoperate as-is. *)

val ok : ?detail:string -> payload list -> response
val err : error_code -> string -> response

val busy : retry_after_ms:int -> string -> response
(** [err BUSY <retry-after-ms> <reason>]: the shed reply.  The first
    message token is machine-readable backoff advice in milliseconds. *)

val code_string : error_code -> string

val code_of_string : string -> error_code option
(** Inverse of {!code_string}; lets a front end propagate a worker's
    error under its original code. *)

val one_line : string -> string
(** Collapse a (possibly multi-line) message into a single protocol
    line: newlines become ["; "], control characters become spaces. *)

val render : Buffer.t -> response -> unit
(** Serialize a response, payload lines then the status line. *)

val is_status : string -> bool
(** Client side: is this reply line the final [ok]/[err] line? *)

exception Line_too_long

val read_line_capped : in_channel -> string option
(** Read one LF-terminated line (CR stripped); [None] at EOF with
    nothing read.
    @raise Line_too_long past {!max_line_bytes}. *)

val write_response : out_channel -> response -> int
(** Serialize, write and flush a response; returns the bytes written
    (the byte-counter satellite's accounting unit). *)
