(** The serving-layer wire protocol: line-oriented text framing.

    CORAL as described in the paper is a single-user interactive
    system; the serving layer turns it into a queryable service.  The
    protocol is deliberately minimal — one request per LF-terminated
    line, one status line per reply — so that a session can be driven
    by hand over [nc]/telnet, by the REPL's [--connect] mode, or by
    any scripting language.

    {2 Requests}

    {v
    hello                      protocol handshake
    ping                       liveness probe
    timeout <ms>               per-request deadline for this session (0 = none)
    query <text>               evaluate a query, e.g.  query path(1, Y)
    consult <text>             load single-line program text
    consult# <nbytes>          load <nbytes> of raw program text that follow
    insert <facts>             insert base facts, e.g.  insert edge(1, 2).
    explain <literal>          the optimizer's rewritten program
    explain analyze <literal>  run the query; rewritten program annotated
                               with per-rule counts and timings
    why <literal>              derivation trees for the answers
    stats                      server + engine statistics
    metrics                    Prometheus text exposition of all metrics
    relations                  base relations and cardinalities
    modules                    loaded modules
    limit tuples <n>           per-session derived-tuple budget (0 = none)
    limit bytes <n>            per-session bytes-estimate budget (0 = none)
    ps                         active queries with live progress and age
    kill <id>                  cooperatively cancel the active query <id>
    events [n]                 tail the newest n (default 20) event-log entries
    degrade [reason]           operator: flip the store read-only (mutations
                               answer err READONLY until restore)
    restore                    operator: clear degraded mode
    quit                       close the session
    v}

    [ps], [kill], [events], [degrade] and [restore] are served without
    the store lock, so they work from any connection while another
    connection's query is evaluating.

    {2 Replies}

    Zero or more payload lines followed by exactly one status line:

    {v
    ans <bindings>             one per query answer ("X = 1, Y = 2" / "true")
    txt <line>                 one per report line (stats, explain, why, ...)
    ok [detail]                success
    err <CODE> <message>       failure; the session stays usable
    v}

    Error codes: [PARSE] (malformed CORAL text), [EVAL] (runtime
    evaluation error), [TIMEOUT] (request deadline exceeded), [PROTO]
    (malformed request line), [TOOBIG] (request exceeds the size
    limits; the server closes the connection), [IOERR] (a storage
    fault — disk I/O error, checksum mismatch, quarantined page — the
    request failed but the session stays usable), [KILLED] (an
    operator cancelled this request via [kill]; the session stays
    usable), [BUSY] (the server is at its admission cap and shed this
    request; the first message token is a suggested retry delay in
    milliseconds), [RESOURCE] (the query exceeded its derived-tuple or
    bytes-estimate budget; the session stays usable), [READONLY] (the
    store is degraded — by an operator or a storage fault — and
    refuses mutations; reads keep working). *)

type limit_kind = Tuples | Bytes

type request =
  | Hello
  | Ping
  | Set_timeout of int  (** milliseconds; 0 disables *)
  | Set_limit of limit_kind * int  (** per-session budget; 0 disables *)
  | Degrade of string  (** operator: force read-only, with a reason *)
  | Restore  (** operator: clear degraded mode *)
  | Query of string
  | Consult of string  (** program text *)
  | Insert of string  (** fact items *)
  | Explain of string
  | Explain_analyze of string
  | Why of string
  | Stats
  | Metrics
  | Relations
  | Modules
  | Ps
  | Kill of int  (** query id from [ps] *)
  | Events of int  (** newest n event-log entries *)
  | Quit

type error_code =
  | Parse
  | Eval
  | Timeout
  | Proto
  | Too_big
  | Ioerr
  | Killed
  | Busy
  | Resource
  | Readonly

type payload =
  | Ans of string  (** a query answer row *)
  | Txt of string  (** a report line *)

type response = {
  payload : payload list;
  status : (string, error_code * string) result;  (** [Ok detail] / [Error (code, msg)] *)
}

val max_line_bytes : int
(** Longest accepted request line (64 KiB). *)

val max_payload_bytes : int
(** Largest accepted [consult#] payload (1 MiB). *)

val parse_request :
  string -> [ `Req of request | `Consult_payload of int | `Bad of string ]
(** Parse one request line ([`Consult_payload n]: the caller must read
    [n] more bytes of program text and build [Consult] itself). *)

val ok : ?detail:string -> payload list -> response
val err : error_code -> string -> response

val busy : retry_after_ms:int -> string -> response
(** [err BUSY <retry-after-ms> <reason>]: the shed reply.  The first
    message token is machine-readable backoff advice in milliseconds. *)

val code_string : error_code -> string

val one_line : string -> string
(** Collapse a (possibly multi-line) message into a single protocol
    line: newlines become ["; "], control characters become spaces. *)

val render : Buffer.t -> response -> unit
(** Serialize a response, payload lines then the status line. *)

val is_status : string -> bool
(** Client side: is this reply line the final [ok]/[err] line? *)
