(** Admission control: the server-wide resource policy and the
    in-flight gate.

    A {!config} bundles every cap the operator can set — concurrent
    connections, concurrently evaluating requests (with a small
    bounded wait queue), and the global per-query budgets.  A {!t} is
    one store's live gate state plus its shed/reject counters; there
    is deliberately no process-global instance.

    The connection cap is enforced by the accept loop (see
    {!Server}); {!admit}/{!release} enforce the in-flight cap around
    every evaluating request in {!Session.handle}.  A request past
    the cap parks in the wait queue for up to [wait_ms]; if the queue
    is full or the wait expires it is shed with
    [`Busy retry_after_ms], which the session turns into
    [err BUSY <retry-after-ms>]. *)

type config = {
  max_sessions : int;  (** concurrent connections; 0 = unlimited *)
  max_inflight : int;  (** concurrently evaluating requests; 0 = unlimited *)
  max_waiters : int;  (** bounded wait queue past the in-flight cap *)
  wait_ms : int;  (** longest a waiter parks before it is shed *)
  retry_after_ms : int;  (** backoff advice carried in BUSY replies *)
  max_query_tuples : int;  (** global per-query derived-tuple budget; 0 = none *)
  max_query_bytes : int;  (** global per-query bytes-estimate budget; 0 = none *)
}

val default : config
(** Everything unlimited (seed behavior) except the wait queue shape:
    8 waiters, 100ms park, 100ms retry advice. *)

type t

val create : config -> t
val config : t -> config

val admit : t -> [ `Admitted | `Busy of int ]
(** Take an in-flight slot, parking briefly if the cap is reached.
    [`Admitted] obliges the caller to {!release}; [`Busy retry_ms] is
    a shed — reply BUSY and do not release. *)

val release : t -> unit

val inflight : t -> int
(** Requests currently holding a slot (admitted, not yet released). *)

val note_shed : t -> unit
(** Count a connection shed at accept time (cap reached, fd
    exhaustion, or thread-spawn failure). *)

val admitted : t -> int
val waited : t -> int
val busy_rejects : t -> int
val shed : t -> int
