(** The snapshot-read execution pool: a process-global set of OCaml 5
    domains that lock-free reads evaluate on.

    Connection threads are systhreads sharing one runtime lock; moving
    evaluation onto worker domains lets a long recursive query and
    short point reads preempt each other at OS granularity (and run
    truly in parallel on multicore) instead of serializing behind the
    runtime lock's scheduler quantum.

    Width comes from [CORAL_READ_DOMAINS] (0 disables the pool); the
    default scales with the machine — 0 on one or two cores, where
    extra domains only add stop-the-world GC rendezvous stalls, else
    up to 4.  Every operation degrades to inline execution when the
    pool is unavailable, so correctness never depends on it. *)

val run : (unit -> 'a) -> 'a
(** Run the thunk on a pool domain, blocking the calling thread until
    it returns; re-raises its exception.  Runs inline when the pool is
    disabled, exhausted of domains, or shut down. *)

val width : unit -> int
(** Domains currently in the shared pool (0 = inline mode). *)
