(** Scan descriptors: the get-next-tuple cursor abstraction.

    "The query evaluation system has a well defined 'get-next-tuple'
    interface with the data manager for access to relations" (paper
    section 2).  A scan wraps any tuple sequence — a base relation scan,
    an index probe, or a derived relation's lazily produced answers —
    behind a cursor with [next], the analogue of CORAL's [C_ScanDesc]
    and of an SQL cursor.  Multiple scans over one relation are
    independent. *)

open Coral_term

type t

val of_seq : Tuple.t Seq.t -> t

val on_relation :
  Relation.t -> ?from_mark:int -> ?to_mark:int -> ?pattern:Term.t array * Bindenv.t -> unit -> t
(** Open a cursor over a relation (candidates only when a pattern probe
    is used: the consumer unifies). *)

val partition : key:int -> shards:int -> shard:int -> Tuple.t Seq.t -> Tuple.t Seq.t
(** Keep only the tuples owned by [shard] under hash partitioning on
    the [key] argument ({!Tuple.partition_hash} mod [shards]).  With
    [shards <= 1] the stream passes through unchanged.  The
    content-keyed analogue of the parallel evaluator's ordinal delta
    striping, usable across process boundaries. *)

val next : t -> Tuple.t option
(** The next tuple, advancing the cursor; [None] at end of scan. *)

val peek : t -> Tuple.t option
(** The next tuple without advancing. *)

val iter : (Tuple.t -> unit) -> t -> unit
val to_list : t -> Tuple.t list
val count : t -> int
