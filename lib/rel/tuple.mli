(** Tuples: the elements of relations.

    A stored tuple is self-contained: its terms are fully resolved and
    its variables (CORAL relations can hold non-ground facts) are
    renumbered to [0 .. nvars-1].  At use time a non-ground tuple is
    paired with a fresh binding environment of size [nvars], which is
    how one stored fact participates in many simultaneous inferences
    without copying. *)

open Coral_term

type t = private {
  terms : Term.t array;
  nvars : int;
  hash : int;  (** hash with variables collapsed, see {!Term.hash_mod_vars} *)
  mutable dead : bool;  (** tombstone set by [delete]; scans skip dead tuples *)
}

val make : Term.t array -> Bindenv.t -> t
(** Canonicalize (resolve + renumber variables) a tuple under an
    environment, as produced by a rule head after a successful join. *)

val of_terms : Term.t array -> t
(** Tuple from environment-free terms (facts from the parser or the
    host API); variables are renumbered. *)

val arity : t -> int
val is_ground : t -> bool

val partition_hash : key:int -> t -> int
(** The hash-partitioning key of this tuple: {!Term.stable_hash} of the
    argument at position [key] (out-of-range keys clamp to 0; arity-0
    tuples hash to 0).  Stable across processes of the same build, so
    independent workers agree on [partition_hash t mod shards] without
    coordination. *)

val kill : t -> unit
(** Tombstone the tuple ([delete]); scans skip dead tuples. *)

val equal : t -> t -> bool
(** Variant equality: equal up to bijective variable renaming (plain
    equality on ground tuples, with the hash-consing fast path). *)

val subsumes : t -> t -> bool
(** [subsumes general specific]: some instantiation of [general] equals
    [specific].  Used for duplicate elimination with non-ground facts. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
