(** The generic relation interface (paper sections 3, 5.6, 7.2).

    Everything the query evaluation system knows about a relation goes
    through this interface: insert, delete, marks, and scans that hand
    out tuples one at a time.  Base relations, derived relations,
    persistent relations and foreign (host-function) relations all
    implement it, which is what lets modules with different evaluation
    strategies interact transparently ("the 'get-next-tuple' interface
    ... is the basis for adding new relation implementations and index
    implementations in a clean fashion").

    {b Marks.}  A mark seals the current subsidiary relation and starts
    a new one; scans can be restricted to the tuples inserted between
    two marks.  This is the feature semi-naive evaluation is built on:
    delta relations are mark-delimited views of the single stored
    relation, and indexes keep working because each subsidiary carries
    its own index stores. *)

open Coral_term

type t = {
  name : string;
  arity : int;
  mutable multiset : bool;
      (** When true, answer-duplicate checks are skipped (section 4.2). *)
  mutable admit : (t -> Tuple.t -> bool) option;
      (** Admission hook, used by aggregate selections: called before
          the duplicate check; returning false rejects the tuple.  The
          hook may delete existing tuples. *)
  mutable scan_safe : bool;
      (** True when concurrent scans from other domains are safe while
          the owning domain inserts (scans snapshot their extent and the
          store never moves published tuples).  In-memory stores set
          this; stores doing I/O or cache mutation on scan leave it
          false, and the parallel evaluator falls back to sequential
          application for rules reading them. *)
  impl : impl;
  stats : stats;
}

and impl = {
  i_insert : dedup:bool -> Tuple.t -> bool;
  i_delete : pattern:(Term.t array * Bindenv.t) option -> (Tuple.t -> bool) -> int;
  i_retire : Tuple.t -> unit;
      (** tombstone one known-live stored tuple in O(1) (aggregate
          selections retire superseded tuples this way) *)
  i_mark : unit -> int;
  i_marks : unit -> int;
  i_cardinal : unit -> int;
  i_add_index : Index.spec -> unit;
  i_indexes : unit -> Index.spec list;
  i_scan :
    from_mark:int -> to_mark:int -> pattern:(Term.t array * Bindenv.t) option -> Tuple.t Seq.t;
  i_mem : Tuple.t -> bool;
      (** Read-only duplicate test: would inserting this tuple be
          rejected as a duplicate (equal or subsumed by a live tuple)?
          Must not mutate any store state — the parallel merge calls it
          from several domains at once. *)
  i_clear : unit -> unit;
  i_freeze : unit -> frozen option;
      (** Capture an immutable snapshot of the sealed contents (see
          {!freeze}); [None] when the implementation cannot snapshot
          (persistent relations, module-call relations).  Called only
          from the write lane, with no concurrent writer. *)
}

(** An immutable snapshot of a relation's contents at freeze time.
    Every cell a frozen view can reach was written before the freeze
    completed, so scans from other domains need no lock once the view
    has been published through an atomic (the snapshot manager's epoch
    publication provides that happens-before edge). *)
and frozen = {
  f_scan : pattern:(Term.t array * Bindenv.t) option -> Tuple.t Seq.t;
  f_mem : Tuple.t -> bool;
  f_cardinal : int;
}

and stats = {
  mutable inserts : int;  (** accepted insertions *)
  mutable duplicates : int;  (** rejected as duplicate/subsumed/inadmissible *)
  mutable scans : int;  (** scans opened *)
}

val v : name:string -> arity:int -> impl -> t
(** Wrap an implementation (used by relation implementations and by
    foreign relations registered from the host language). *)

val insert : t -> Tuple.t -> bool
(** Insert with admission hook and (unless [multiset]) duplicate /
    subsumption check; true if the relation grew. *)

val insert_terms : t -> Term.t array -> bool

val delete : t -> ?pattern:Term.t array * Bindenv.t -> (Tuple.t -> bool) -> int
(** Tombstone every live tuple satisfying the predicate (restricted to
    index candidates when a usable [pattern] is given); returns the
    number deleted. *)

val retire : t -> Tuple.t -> unit
(** Tombstone one known-live stored tuple without scanning. *)

val mark : t -> int
(** Seal the current subsidiary; returns the new mark count. *)

val marks : t -> int
val cardinal : t -> int

val scan : t -> ?from_mark:int -> ?to_mark:int -> ?pattern:Term.t array * Bindenv.t -> unit -> Tuple.t Seq.t
(** Live tuples inserted in the mark interval [\[from_mark, to_mark)]
    ([to_mark = -1], the default, means "through now").  When a
    [pattern] is supplied and an index covers it, candidates come from
    an index probe; they are a superset of the matching tuples and the
    caller unifies. *)

val scan_quiet : t -> ?from_mark:int -> ?to_mark:int -> ?pattern:Term.t array * Bindenv.t -> unit -> Tuple.t Seq.t
(** [scan] without touching the (unsynchronized) stats counters: used by
    parallel workers, which count scans in task-local arrays flushed
    later via {!note_scans}. *)

val mem : t -> Tuple.t -> bool
(** Read-only duplicate test (see [impl.i_mem]). *)

val note_scans : t -> int -> unit
(** Credit [n] scans to this relation's stats (and the global counters);
    the parallel merge uses this to keep stats identical to a sequential
    run. *)

val note_duplicates : t -> int -> unit
(** Credit [n] duplicate rejections likewise. *)

val freeze : t -> t option
(** An immutable, read-only view of this relation's current sealed
    contents, wrapped back into the uniform interface: scans (index
    probes included) see exactly the tuples present at freeze time and
    never anything inserted later; writes raise.  Mark semantics match
    persistent relations ([marks] = 0, delta scans from a positive mark
    are empty).  [None] when the implementation cannot snapshot.  The
    caller must hold the write lane: [freeze] seals the open subsidiary
    first, and captured state is safe to publish to other domains only
    through an atomic (see {!Coral_storage.Snapshot} in lib/storage). *)

val to_list : t -> Tuple.t list
val add_index : t -> Index.spec -> unit
val indexes : t -> Index.spec list
val clear : t -> unit
val pp : Format.formatter -> t -> unit

val global_stats : unit -> int * int * int
(** Work counters summed over every relation since the last reset:
    (accepted inserts, rejected duplicates, scans opened) — the
    machine-independent work measures reported by the benchmarks. *)

val reset_global_stats : unit -> unit
