open Coral_term

type t = {
  name : string;
  arity : int;
  mutable multiset : bool;
  mutable admit : (t -> Tuple.t -> bool) option;
  mutable scan_safe : bool;
  impl : impl;
  stats : stats;
}

and impl = {
  i_insert : dedup:bool -> Tuple.t -> bool;
  i_delete : pattern:(Term.t array * Bindenv.t) option -> (Tuple.t -> bool) -> int;
  i_retire : Tuple.t -> unit;
  i_mark : unit -> int;
  i_marks : unit -> int;
  i_cardinal : unit -> int;
  i_add_index : Index.spec -> unit;
  i_indexes : unit -> Index.spec list;
  i_scan :
    from_mark:int -> to_mark:int -> pattern:(Term.t array * Bindenv.t) option -> Tuple.t Seq.t;
  i_mem : Tuple.t -> bool;
  i_clear : unit -> unit;
  i_freeze : unit -> frozen option;
}

and stats = {
  mutable inserts : int;
  mutable duplicates : int;
  mutable scans : int;
}

(* An immutable snapshot view of a relation's sealed contents, captured
   by [freeze].  Everything a frozen view hands out was published
   before the freeze, so readers on other domains may scan it without
   any lock — the snapshot layer publishes the view through an atomic,
   which gives the happens-before edge for every captured cell. *)
and frozen = {
  f_scan : pattern:(Term.t array * Bindenv.t) option -> Tuple.t Seq.t;
  f_mem : Tuple.t -> bool;
  f_cardinal : int;
}

(* Global work counters across every relation: the benchmark harness
   reads these as machine-independent measures of evaluation work. *)
let g_inserts = ref 0
let g_duplicates = ref 0
let g_scans = ref 0

let global_stats () = !g_inserts, !g_duplicates, !g_scans

let reset_global_stats () =
  g_inserts := 0;
  g_duplicates := 0;
  g_scans := 0

let v ~name ~arity impl =
  { name;
    arity;
    multiset = false;
    admit = None;
    scan_safe = false;
    impl;
    stats = { inserts = 0; duplicates = 0; scans = 0 }
  }

let insert r tuple =
  let admitted = match r.admit with None -> true | Some hook -> hook r tuple in
  if admitted && r.impl.i_insert ~dedup:(not r.multiset) tuple then begin
    r.stats.inserts <- r.stats.inserts + 1;
    incr g_inserts;
    true
  end
  else begin
    r.stats.duplicates <- r.stats.duplicates + 1;
    incr g_duplicates;
    false
  end

let insert_terms r terms = insert r (Tuple.of_terms terms)

let delete r ?pattern pred = r.impl.i_delete ~pattern pred
let retire r tuple = r.impl.i_retire tuple
let mark r = r.impl.i_mark ()
let marks r = r.impl.i_marks ()
let cardinal r = r.impl.i_cardinal ()

let scan r ?(from_mark = 0) ?(to_mark = -1) ?pattern () =
  r.stats.scans <- r.stats.scans + 1;
  incr g_scans;
  r.impl.i_scan ~from_mark ~to_mark ~pattern

(* Uncounted scan for parallel workers: the stats cells are plain
   mutable ints owned by the merge thread, so workers count their scans
   in task-local arrays and the merge flushes them via [note_scans]. *)
let scan_quiet r ?(from_mark = 0) ?(to_mark = -1) ?pattern () =
  r.impl.i_scan ~from_mark ~to_mark ~pattern

let note_scans r n =
  r.stats.scans <- r.stats.scans + n;
  g_scans := !g_scans + n

let note_duplicates r n =
  r.stats.duplicates <- r.stats.duplicates + n;
  g_duplicates := !g_duplicates + n

let mem r tuple = r.impl.i_mem tuple

let to_list r = List.of_seq (scan r ())
let add_index r spec = r.impl.i_add_index spec
let indexes r = r.impl.i_indexes ()
let clear r = r.impl.i_clear ()

(* A frozen view wrapped back into the uniform interface: evaluation
   scans it exactly like any other base relation.  Mark semantics mirror
   persistent relations (no marks; a delta scan from a positive mark is
   empty), which is the established contract for base relations that
   cannot be incrementally delta-scanned.  Writes raise: the snapshot
   layer routes every mutation through the live master relation. *)
let freeze r =
  match r.impl.i_freeze () with
  | None -> None
  | Some fz ->
    let read_only () =
      failwith (r.name ^ ": snapshot views are read-only; mutate through the write lane")
    in
    let impl =
      { i_insert = (fun ~dedup:_ _ -> read_only ());
        i_delete = (fun ~pattern:_ _ -> read_only ());
        i_retire = (fun _ -> read_only ());
        i_mark = (fun () -> 0);
        i_marks = (fun () -> 0);
        i_cardinal = (fun () -> fz.f_cardinal);
        i_add_index = (fun _ -> ());
        i_indexes = (fun () -> []);
        i_scan =
          (fun ~from_mark ~to_mark:_ ~pattern ->
            if from_mark > 0 then Seq.empty else fz.f_scan ~pattern);
        i_mem = fz.f_mem;
        i_clear = (fun () -> read_only ());
        i_freeze = (fun () -> Some fz)
      }
    in
    let fr = v ~name:r.name ~arity:r.arity impl in
    fr.multiset <- r.multiset;
    fr.scan_safe <- true;
    Some fr

let pp ppf r =
  Format.fprintf ppf "@[<v>%s/%d (%d tuples)@,@]" r.name r.arity (cardinal r);
  Seq.iter (fun t -> Format.fprintf ppf "%s%a@," r.name Tuple.pp t) (scan r ())
