open Coral_term

type path = int list

type spec =
  | Args of int list
  | Paths of path list

let spec_paths = function
  | Args cols -> List.map (fun c -> [ c ]) cols
  | Paths paths -> paths

let pp_spec ppf = function
  | Args cols ->
    Format.fprintf ppf "args(%s)" (String.concat "," (List.map string_of_int cols))
  | Paths paths ->
    let pp_path p = String.concat "." (List.map string_of_int p) in
    Format.fprintf ppf "paths(%s)" (String.concat "," (List.map pp_path paths))

let spec_equal a b = spec_paths a = spec_paths b

type t = {
  paths : path list;
  buckets : (int, Tuple.t list ref) Hashtbl.t;
  mutable var_bucket : Tuple.t list;
  mutable mismatch : Tuple.t list;
      (* tuples structurally incompatible with the indexed positions:
         no probe through this index can match them, so they are stored
         but never returned *)
  mutable count : int;
}

let create spec =
  { paths = spec_paths spec;
    buckets = Hashtbl.create 64;
    var_bucket = [];
    mismatch = [];
    count = 0
  }

(* Walk a stored tuple's term along a path.  [`Key k] for a ground
   subterm, [`Var] when a variable occurs at or above the position (the
   tuple could match any probe), [`Mismatch] when the structure cannot
   unify with any probe that is ground at this position.  Keys are
   structural hashes ([Term.ground_key], lock-free and identical on
   every domain), not unique ids: distinct terms may share a bucket,
   which is sound because probe results are candidate supersets the
   caller unifies. *)
let rec extract_term term path =
  match path with
  | [] -> begin
    match Term.ground_key term with
    | Some k -> `Key k
    | None -> `Var
  end
  | i :: rest -> begin
    match term with
    | Term.Var _ -> `Var
    | Term.Const _ -> `Mismatch
    | Term.App a -> if i < Array.length a.args then extract_term a.args.(i) rest else `Mismatch
  end

let extract_tuple paths (tuple : Tuple.t) =
  let rec go acc = function
    | [] -> `Key acc
    | path :: rest -> begin
      match path with
      | [] -> assert false
      | argpos :: inner ->
        if argpos >= Array.length tuple.Tuple.terms then `Mismatch
        else begin
          match extract_term tuple.Tuple.terms.(argpos) inner with
          | `Key id -> go (((acc * 0x01000193) lxor id) land max_int) rest
          | `Var -> `Var
          | `Mismatch -> `Mismatch
        end
    end
  in
  go 0x811c9dc5 paths

(* Walk a query pattern along a path, dereferencing through the binding
   environment.  Returns the ground key or [None] if the pattern is not
   ground at some indexed position (index unusable). *)
let rec extract_pattern term env path =
  let term, env = Bindenv.deref term env in
  match path with
  | [] -> Term.ground_key (Unify.resolve term env)
  | i :: rest -> begin
    match term with
    | Term.Var _ | Term.Const _ -> None
    | Term.App a -> if i < Array.length a.args then extract_pattern a.args.(i) env rest else None
  end

let insert idx tuple =
  idx.count <- idx.count + 1;
  match extract_tuple idx.paths tuple with
  | `Key key -> begin
    match Hashtbl.find_opt idx.buckets key with
    | Some bucket -> bucket := tuple :: !bucket
    | None -> Hashtbl.add idx.buckets key (ref [ tuple ])
  end
  | `Var -> idx.var_bucket <- tuple :: idx.var_bucket
  | `Mismatch -> idx.mismatch <- tuple :: idx.mismatch

let probe idx pattern env =
  let rec go acc = function
    | [] -> Some acc
    | path :: rest -> begin
      match path with
      | [] -> None
      | argpos :: inner ->
        if argpos >= Array.length pattern then None
        else begin
          match extract_pattern pattern.(argpos) env inner with
          | Some id -> go (((acc * 0x01000193) lxor id) land max_int) rest
          | None -> None
        end
    end
  in
  match go 0x811c9dc5 idx.paths with
  | None -> None
  | Some key ->
    let keyed = match Hashtbl.find_opt idx.buckets key with Some b -> !b | None -> [] in
    Some (List.rev_append idx.var_bucket keyed)

let cardinal idx = idx.count
