open Coral_term

(* Subsidiary relations are kept in a growable array indexed by mark
   interval, so a scan over a mark range selects its subsidiaries in
   O(selected) — semi-naive delta scans touch one or two subsidiaries
   regardless of how many iterations have passed.  Index stores live on
   each subsidiary (the paper: "the indexing mechanisms are used on each
   subsidiary relation"); the duplicate table is relation-global since
   duplicate checks always span all marks. *)

type sub = {
  mutable tuples : Tuple.t array;
  mutable n : int;
  mutable stores : Index.t list;  (* one per index spec, same order *)
}

type state = {
  mutable subs : sub array;  (* oldest first; subs.(nsubs-1) is open *)
  mutable nsubs : int;
  mutable specs : Index.spec list;
  mutable live : int;
  dups : (int, Tuple.t list ref) Hashtbl.t;
  mutable nonground : Tuple.t list;
}

let dummy_tuple = Tuple.of_terms [||]

let new_sub specs =
  { tuples = Array.make 8 dummy_tuple; n = 0; stores = List.map Index.create specs }

let dummy_sub = { tuples = [||]; n = 0; stores = [] }

let push_sub st =
  if st.nsubs >= Array.length st.subs then begin
    let bigger = Array.make (max 4 (2 * Array.length st.subs)) dummy_sub in
    Array.blit st.subs 0 bigger 0 st.nsubs;
    st.subs <- bigger
  end;
  st.subs.(st.nsubs) <- new_sub st.specs;
  st.nsubs <- st.nsubs + 1

let sub_append sub (tuple : Tuple.t) =
  if sub.n >= Array.length sub.tuples then begin
    let bigger = Array.make (2 * Array.length sub.tuples) tuple in
    Array.blit sub.tuples 0 bigger 0 sub.n;
    sub.tuples <- bigger
  end;
  sub.tuples.(sub.n) <- tuple;
  sub.n <- sub.n + 1;
  List.iter (fun store -> Index.insert store tuple) sub.stores

let is_duplicate st (tuple : Tuple.t) =
  (match Hashtbl.find_opt st.dups tuple.Tuple.hash with
  | Some bucket -> List.exists (fun ex -> (not ex.Tuple.dead) && Tuple.equal ex tuple) !bucket
  | None -> false)
  || List.exists (fun ex -> (not ex.Tuple.dead) && Tuple.subsumes ex tuple) st.nonground

(* Inserting a more general non-ground tuple retires the tuples it
   strictly subsumes: answers are preserved (every instance of a
   subsumed tuple is an instance of the subsuming one). *)
let retire_subsumed st (tuple : Tuple.t) =
  for s = 0 to st.nsubs - 1 do
    let sub = st.subs.(s) in
    for i = 0 to sub.n - 1 do
      let ex = sub.tuples.(i) in
      if (not ex.Tuple.dead) && Tuple.subsumes tuple ex then begin
        Tuple.kill ex;
        st.live <- st.live - 1
      end
    done
  done

let create ?(indexes = []) ~name ~arity () =
  let st =
    { subs = Array.make 4 dummy_sub;
      nsubs = 0;
      specs = indexes;
      live = 0;
      dups = Hashtbl.create 256;
      nonground = []
    }
  in
  push_sub st;
  let insert ~dedup tuple =
    if dedup && is_duplicate st tuple then false
    else begin
      if dedup && not (Tuple.is_ground tuple) then retire_subsumed st tuple;
      sub_append st.subs.(st.nsubs - 1) tuple;
      (match Hashtbl.find_opt st.dups tuple.Tuple.hash with
      | Some bucket -> bucket := tuple :: !bucket
      | None -> Hashtbl.add st.dups tuple.Tuple.hash (ref [ tuple ]));
      if not (Tuple.is_ground tuple) then st.nonground <- tuple :: st.nonground;
      st.live <- st.live + 1;
      true
    end
  in
  let rec seq_array arr limit i () =
    if i >= limit then Seq.Nil else Seq.Cons (arr.(i), seq_array arr limit (i + 1))
  in
  let candidates ~tuples ~stores ~limit ~pattern =
    match pattern with
    | Some (args, env) ->
      let rec try_stores = function
        | [] -> None
        | store :: rest -> begin
          match Index.probe store args env with
          | Some found -> Some found
          | None -> try_stores rest
        end
      in
      (match try_stores stores with
      | Some found -> List.to_seq found
      | None -> seq_array tuples limit 0)
    | None -> seq_array tuples limit 0
  in
  let candidates_of_sub sub ~pattern ~snapshot =
    candidates ~tuples:sub.tuples ~stores:sub.stores ~limit:snapshot ~pattern
  in
  let scan ~from_mark ~to_mark ~pattern =
    let last = if to_mark < 0 then st.nsubs else min to_mark st.nsubs in
    let from_mark = max 0 from_mark in
    (* Snapshot each subsidiary's length now: tuples inserted after the
       scan opens are not seen (mark semantics for the open interval). *)
    let parts = ref [] in
    for s = last - 1 downto from_mark do
      let sub = st.subs.(s) in
      if sub.n > 0 then parts := candidates_of_sub sub ~pattern ~snapshot:sub.n :: !parts
    done;
    Seq.filter (fun t -> not t.Tuple.dead) (List.fold_right Seq.append !parts Seq.empty)
  in
  let delete ~pattern pred =
    let count = ref 0 in
    Seq.iter
      (fun t ->
        if pred t then begin
          Tuple.kill t;
          st.live <- st.live - 1;
          incr count
        end)
      (scan ~from_mark:0 ~to_mark:(-1) ~pattern);
    !count
  in
  let impl =
    { Relation.i_insert = insert;
      i_delete = delete;
      i_retire =
        (fun t ->
          if not t.Tuple.dead then begin
            Tuple.kill t;
            st.live <- st.live - 1
          end);
      i_mark =
        (fun () ->
          push_sub st;
          st.nsubs - 1);
      i_marks = (fun () -> st.nsubs - 1);
      i_cardinal = (fun () -> st.live);
      i_add_index =
        (fun spec ->
          if not (List.exists (Index.spec_equal spec) st.specs) then begin
            st.specs <- st.specs @ [ spec ];
            for s = 0 to st.nsubs - 1 do
              let sub = st.subs.(s) in
              let store = Index.create spec in
              for i = 0 to sub.n - 1 do
                let t = sub.tuples.(i) in
                if not t.Tuple.dead then Index.insert store t
              done;
              sub.stores <- sub.stores @ [ store ]
            done
          end);
      i_indexes = (fun () -> st.specs);
      i_scan = scan;
      i_mem = (fun tuple -> is_duplicate st tuple);
      i_freeze =
        (fun () ->
          (* Seal the open subsidiary (unless already empty) so every
             captured array has reached its final extent; then capture
             each sealed subsidiary's cells by VALUE — the tuples array,
             its length, and the store list — because the live relation
             may later grow new index stores or reallocate the subs
             array, and a frozen reader must never chase those.  Sealed
             tuple arrays are append-only up to the captured length and
             never reallocated, so the capture is genuinely immutable
             (tombstone flags excepted; see DESIGN.md on retraction
             visibility). *)
          if st.subs.(st.nsubs - 1).n > 0 then push_sub st;
          let nsealed = st.nsubs - 1 in
          let snaps =
            Array.init nsealed (fun s ->
                let sub = st.subs.(s) in
                sub.tuples, sub.n, sub.stores)
          in
          let f_scan ~pattern =
            let parts = ref [] in
            for s = nsealed - 1 downto 0 do
              let tuples, n, stores = snaps.(s) in
              if n > 0 then parts := candidates ~tuples ~stores ~limit:n ~pattern :: !parts
            done;
            Seq.filter
              (fun (t : Tuple.t) -> not t.Tuple.dead)
              (List.fold_right Seq.append !parts Seq.empty)
          in
          let f_mem tuple =
            Seq.exists (fun ex -> Tuple.subsumes ex tuple) (f_scan ~pattern:None)
          in
          Some { Relation.f_scan; f_mem; f_cardinal = st.live });
      i_clear =
        (fun () ->
          st.subs <- Array.make 4 dummy_sub;
          st.nsubs <- 0;
          push_sub st;
          st.live <- 0;
          Hashtbl.reset st.dups;
          st.nonground <- [])
    }
  in
  let r = Relation.v ~name ~arity impl in
  (* Scans snapshot subsidiary lengths and arrays only grow by copy, so
     readers on other domains are safe while the owner inserts. *)
  r.Relation.scan_safe <- true;
  r
