open Coral_term

type t = {
  terms : Term.t array;
  nvars : int;
  hash : int;
  mutable dead : bool;
}

let combined_hash terms =
  let h = ref 0x811c9dc5 in
  Array.iter (fun t -> h := ((!h * 0x01000193) lxor Term.hash_mod_vars t) land max_int) terms;
  !h

let make terms env =
  let canon, nvars = Unify.canonicalize terms env in
  { terms = canon; nvars; hash = combined_hash canon; dead = false }

let of_terms terms = make terms Bindenv.empty

let arity t = Array.length t.terms

(* Ownership hash for hash partitioning: the stable hash of the key
   argument (clamped into the arity; arity-0 tuples all land in one
   partition).  Stable across processes — see [Term.stable_hash]. *)
let partition_hash ~key t =
  let n = Array.length t.terms in
  if n = 0 then 0
  else
    let k = if key >= 0 && key < n then key else 0 in
    Term.stable_hash t.terms.(k)
let is_ground t = t.nvars = 0
let kill t = t.dead <- true

let equal a b =
  a == b
  || a.hash = b.hash
     && Array.length a.terms = Array.length b.terms
     && (if a.nvars = 0 && b.nvars = 0 then begin
           let rec go i = i < 0 || (Term.equal a.terms.(i) b.terms.(i) && go (i - 1)) in
           go (Array.length a.terms - 1)
         end
         else a.nvars = b.nvars && Unify.variant a.terms b.terms)

let subsumes general specific =
  if general.nvars = 0 then equal general specific
  else Unify.subsumes (general.terms, general.nvars) (specific.terms, specific.nvars)

let pp ppf t =
  Format.fprintf ppf "(";
  Array.iteri
    (fun i term ->
      if i > 0 then Format.fprintf ppf ", ";
      Term.pp ppf term)
    t.terms;
  Format.fprintf ppf ")"

let to_string t = Format.asprintf "%a" pp t
