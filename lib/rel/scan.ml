open Coral_term

type t = { mutable rest : Tuple.t Seq.t }

let of_seq seq = { rest = seq }

let on_relation rel ?from_mark ?to_mark ?pattern () =
  of_seq (Relation.scan rel ?from_mark ?to_mark ?pattern ())

let next scan =
  match scan.rest () with
  | Seq.Nil -> None
  | Seq.Cons (t, rest) ->
    scan.rest <- rest;
    Some t

let peek scan =
  match scan.rest () with
  | Seq.Nil -> None
  | Seq.Cons (t, _) as node ->
    scan.rest <- (fun () -> node);
    Some t

(* Hash-partition filter over a tuple stream: keep the tuples the given
   shard owns.  The same shape as the parallel evaluator's ordinal
   striping of delta scans (PR 4), but keyed on tuple content instead
   of arrival order so that separate processes agree on ownership. *)
let partition ~key ~shards ~shard seq =
  if shards <= 1 then seq
  else Seq.filter (fun t -> Tuple.partition_hash ~key t mod shards = shard) seq

let iter f scan = Seq.iter f scan.rest
let to_list scan = List.of_seq scan.rest
let count scan = Seq.length scan.rest
