type state = {
  mutable intervals : Tuple.t list list;  (* newest interval first, each newest tuple first *)
  mutable live : int;
}

let create ~name ~arity () =
  let st = { intervals = [ [] ]; live = 0 } in
  let all_live () =
    List.concat_map (List.filter (fun t -> not t.Tuple.dead)) st.intervals
  in
  let insert ~dedup tuple =
    let dup =
      dedup
      && List.exists
           (fun ex -> (not ex.Tuple.dead) && Tuple.subsumes ex tuple)
           (List.concat st.intervals)
    in
    if dup then false
    else begin
      (match st.intervals with
      | current :: rest -> st.intervals <- (tuple :: current) :: rest
      | [] -> st.intervals <- [ [ tuple ] ]);
      st.live <- st.live + 1;
      true
    end
  in
  let scan ~from_mark ~to_mark ~pattern =
    ignore pattern;
    let oldest_first = List.rev st.intervals in
    let total = List.length oldest_first in
    let last = if to_mark < 0 then total else min to_mark total in
    let selected = List.filteri (fun i _ -> i >= from_mark && i < last) oldest_first in
    (* Snapshot: lists are immutable once captured, so a scan never sees
       tuples inserted after it was opened. *)
    let parts = List.map (fun l -> List.to_seq (List.rev l)) selected in
    Seq.filter (fun t -> not t.Tuple.dead) (List.fold_right Seq.append parts Seq.empty)
  in
  let impl =
    { Relation.i_insert = insert;
      i_retire =
        (fun t ->
          if not t.Tuple.dead then begin
            Tuple.kill t;
            st.live <- st.live - 1
          end);
      i_delete =
        (fun ~pattern pred ->
          ignore pattern;
          let count = ref 0 in
          List.iter
            (fun t ->
              if pred t then begin
                Tuple.kill t;
                st.live <- st.live - 1;
                incr count
              end)
            (all_live ());
          !count);
      i_mark =
        (fun () ->
          st.intervals <- [] :: st.intervals;
          List.length st.intervals - 1);
      i_marks = (fun () -> List.length st.intervals - 1);
      i_cardinal = (fun () -> st.live);
      i_add_index = (fun _ -> ());
      i_indexes = (fun () -> []);
      i_scan = scan;
      i_mem =
        (fun tuple ->
          List.exists
            (fun ex -> (not ex.Tuple.dead) && Tuple.subsumes ex tuple)
            (List.concat st.intervals));
      i_freeze =
        (fun () ->
          (* Seal so the head interval list is never consed onto again,
             then capture the interval list by value: cons cells are
             immutable, and inserts only ever replace [st.intervals]
             with a new head. *)
          (match st.intervals with
          | [] :: _ -> ()
          | _ -> st.intervals <- [] :: st.intervals);
          let captured = st.intervals in
          let f_scan ~pattern:_ =
            let parts = List.rev_map (fun l -> List.to_seq (List.rev l)) captured in
            Seq.filter
              (fun (t : Tuple.t) -> not t.Tuple.dead)
              (List.fold_right Seq.append parts Seq.empty)
          in
          let f_mem tuple =
            Seq.exists (fun ex -> Tuple.subsumes ex tuple) (f_scan ~pattern:None)
          in
          Some { Relation.f_scan; f_mem; f_cardinal = st.live });
      i_clear =
        (fun () ->
          st.intervals <- [ [] ];
          st.live <- 0)
    }
  in
  let r = Relation.v ~name ~arity impl in
  (* Interval lists are immutable once captured by a scan. *)
  r.Relation.scan_safe <- true;
  r
