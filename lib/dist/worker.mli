(** The per-shard side of the distributed fixpoint: handles the
    cluster control-plane requests ([shard], [dprog#], [delta#],
    [barrier], [dreset]) against one server's engine.

    Derived relations are materialized as ordinary base relations
    (plus a [pred@delta] sibling per predicate holding the last
    round's new tuples), so router queries against a worker need
    nothing special.  Install the result of {!handle} with
    {!Coral_server.Session.set_dist_handler}. *)

type t

val create :
  eng:Coral.Engine.t ->
  commit:(invalidate:bool -> (unit -> unit) -> unit) ->
  locked:((unit -> unit) -> unit) ->
  budget:(unit -> int) ->
  t
(** [commit] is the store's write lane (promotes become ordinary MVCC
    epochs), [locked] its read lane (step evaluation), [budget] the
    per-fixpoint promoted-tuple cap (0 = unlimited), read at each
    promote so an operator's [limit] change takes effect live. *)

val handle : t -> Coral_server.Protocol.request -> Coral_server.Protocol.response
(** Serve one cluster request.  [barrier step] replies only after
    every delta batch it shipped has been acknowledged by its peer, so
    the coordinator may treat "all steps replied" as "no delta in
    flight". *)

val disconnect : t -> unit
(** Close this worker's peer connections (kept open across fixpoints
    otherwise).  Cheap and non-destructive — a later delta send
    reconnects lazily — but required for a clean teardown when the
    worker is embedded in a process that audits its descriptors. *)

val stats : t -> (string * int) list
(** Monotonic counters (dist.derived_total, dist.shipped_total,
    dist.shipped_bytes, dist.received_total, dist.received_batches,
    dist.promoted_total, dist.rounds_total) for the server's stats
    report. *)

val set_fault_step_delay : t -> float -> unit
(** Fault seam: make every [barrier step] sleep this many seconds
    first, turning the worker into a deterministic straggler for
    skew-detection tests and operator drills.  [0.] clears it. *)
