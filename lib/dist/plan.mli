(** Distributability analysis for the sharded fixpoint.

    The supported class is "linear" programs: replicated base
    relations, hash-partitioned derived relations, and at most one
    derived body literal per rule.  Everything else yields [Local] and
    the router evaluates on its own full replica instead. *)

type rule_class =
  | Init  (** no derived body literal: run everywhere, keep owned heads *)
  | Linear of int  (** index of the one derived body literal *)

type drule = { rule : Coral.Ast.rule; cls : rule_class }

type analysis = {
  idb : (string * int) list;  (** partitioned derived predicates *)
  drules : drule list;
  text : string;  (** the program as shipped to workers *)
}

type verdict =
  | Distributable of analysis
  | Local of string  (** why the router must evaluate locally *)

val analyse : Coral.Ast.module_ list -> Coral.Ast.rule list -> verdict

val analyse_engine : Coral.Engine.t -> verdict
(** Analyse everything the engine has consulted so far. *)

val analyse_text : string -> verdict
(** Parse and analyse program text (as sent to [dprog]). *)
