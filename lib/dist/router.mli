(** The fan-out router: a protocol-compatible front end over a set of
    [coral_server] worker shards.

    Clients see an ordinary server — query/consult/insert, stats,
    metrics, ps/kill, the same error codes.  The router keeps a full
    single-node replica of the consulted program; queries it can prove
    distributable (the program is in the linear class, the query has
    exactly one positive literal over a partitioned predicate) are
    fanned out to the workers and merged, everything else evaluates
    locally.  A consult/insert — or a query that mutates the replica
    through the assert/retract builtins — marks the cluster dirty; the
    next distributed query reprovisions it from scratch (configure,
    dreset, re-ship the EDB, ship the program, seed partitioned
    predicates' consulted facts to their owner shards, run the
    fixpoint) before fanning out.

    The router is also the cluster's observability front end
    (DESIGN.md §15).  Every request gets a trace id (client-supplied
    [tid=] or freshly minted) that rides the worker commands; [trace
    <id>|last] pulls the matching spans back from every worker and
    stitches them into one Chrome trace_event JSON with a lane per
    process.  [metrics] (and the [--metrics-port] endpoint, via
    {!metrics_text}) federates every worker's scrape under
    [coral_shard_*{shard="N"}] labels plus skew/straggler roll-ups,
    and [dstat] prints the last fixpoint's per-round, per-shard
    table. *)

type listen =
  [ `Tcp of string * int
  | `Unix of string ]

type t

val start :
  ?consult:string list ->
  ?limits:Coral_server.Admission.config ->
  ?straggler_factor:float ->
  listen:listen ->
  shard_addrs:string list ->
  key:int ->
  Coral.t ->
  t
(** Bind, consult the given files into the router's replica, and begin
    accepting.  [shard_addrs] are the workers' [host:port] / socket
    addresses; [key] is the partition-key argument position.
    [straggler_factor] tunes skew detection (a round's slowest shard
    is flagged when it exceeds the median step time by this multiple;
    default {!Coordinator.default_straggler_factor}).  No worker is
    contacted until the first distributed query.
    @raise Unix.Unix_error when binding fails. *)

val port : t -> int
val store : t -> Coral_server.Session.store
val shards : t -> int

val metrics_text : t -> string
(** The federated Prometheus scrape body: the router replica's own
    metrics, cluster roll-ups ([coral_dist_skew_ratio],
    [coral_dist_straggler_rounds], [coral_router_*]), then every
    worker's metrics relabeled as [coral_shard_*{shard="N"}] plus a
    [coral_shard_up] gauge per shard.  Wire this as the
    [--metrics-port] body. *)

val wait : t -> unit
val shutdown : t -> unit
