(** The fan-out router: a protocol-compatible front end over a set of
    [coral_server] worker shards.

    Clients see an ordinary server — query/consult/insert, stats,
    metrics, ps/kill, the same error codes.  The router keeps a full
    single-node replica of the consulted program; queries it can prove
    distributable (the program is in the linear class, the query has
    exactly one positive literal over a partitioned predicate) are
    fanned out to the workers and merged, everything else evaluates
    locally.  A consult/insert — or a query that mutates the replica
    through the assert/retract builtins — marks the cluster dirty; the
    next distributed query reprovisions it from scratch (configure,
    dreset, re-ship the EDB, ship the program, seed partitioned
    predicates' consulted facts to their owner shards, run the
    fixpoint) before fanning out. *)

type listen =
  [ `Tcp of string * int
  | `Unix of string ]

type t

val start :
  ?consult:string list ->
  ?limits:Coral_server.Admission.config ->
  listen:listen ->
  shard_addrs:string list ->
  key:int ->
  Coral.t ->
  t
(** Bind, consult the given files into the router's replica, and begin
    accepting.  [shard_addrs] are the workers' [host:port] / socket
    addresses; [key] is the partition-key argument position.  No
    worker is contacted until the first distributed query.
    @raise Unix.Unix_error when binding fails. *)

val port : t -> int
val store : t -> Coral_server.Session.store
val shards : t -> int
val wait : t -> unit
val shutdown : t -> unit
