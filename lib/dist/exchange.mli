(** The per-worker exchange buffer: tuples waiting for the next
    promote barrier.  Internally mutexed — delta batches arrive on
    peer connection threads while the worker's own step holds the
    store's write lane, and this buffer is the only state they share. *)

type item = { pred : string; arity : int; tuple : Coral.Tuple.t }

type t

val create : unit -> t

val add_remote : t -> item list -> int
(** Buffer a decoded delta batch from a peer; returns the batch size.
    Counted pre-dedup so shipped/received sums balance exactly. *)

val add_local : t -> item list -> unit
(** Buffer the worker's own locally-derived owned tuples. *)

val drain : t -> item list * int
(** All buffered items (arrival order, remote before local) and the
    round's pre-dedup received count; empties the buffer. *)

val reset : t -> unit

val totals : t -> int * int
(** (tuples received, batches received) since the last reset. *)
