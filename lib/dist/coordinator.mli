(** The round-synchronous fixpoint coordinator: drives the two-phase
    quiescence barrier ([barrier step] / [barrier promote]) over every
    worker and detects the global fixpoint from the replies alone —
    a round that promotes no new tuple anywhere and shipped nothing is
    the last one.  A per-round shipped-equals-received balance check
    aborts the run on any lost or duplicated delta batch. *)

type t

type shard_round = {
  sr_shard : int;
  sr_step_s : float;
      (** this shard's [barrier step] wall time as observed by the
          coordinator: local evaluation + delta shipping + barrier wait *)
  sr_derived : int;
  sr_shipped : int;
  sr_received : int;
  sr_new : int;
}

type round_stat = {
  r_round : int;
  r_wall_s : float;  (** the whole round (slowest step + slowest promote) *)
  r_step_max_s : float;
  r_skew : float;  (** max/mean of per-shard step times; 1.0 = balanced *)
  r_straggler : int option;
      (** the slowest shard, flagged when it exceeded the configured
          multiple of the round's median step time *)
  r_shards : shard_round list;
}

type run_stats = {
  rounds : int;
  derived : int;  (** candidate-new tuples derived across all shards *)
  shipped_tuples : int;
  shipped_bytes : int;
  new_tuples : int;  (** tuples that survived promotion (post-dedup) *)
  wall_s : float;
  skew_max : float;  (** worst per-round skew ratio of the run *)
  stragglers : int;  (** rounds that flagged a straggler *)
  round_stats : round_stat list;  (** oldest first *)
}

val default_straggler_factor : float
(** 3.0: a shard [3×] slower than the round's median step is flagged. *)

val create : ?straggler_factor:float -> addrs:string list -> key:int -> unit -> t
(** One client per worker address ([host:port] or socket path); [key]
    is the partition-key argument position sent with [shard].
    [straggler_factor] (default {!default_straggler_factor}, clamped
    to [>= 1.0]) sets the median multiple past which a shard's step
    time flags it in [dist.round] events and {!round_stat}. *)

val shards : t -> int
val addrs : t -> string list

val partition : t -> Partition.t
(** The partitioner every worker was configured with: same shard
    count, same key argument — the router uses it to route seed
    deltas to their owner. *)

val disconnect : t -> unit

val configure : t -> (unit, Coral_server.Protocol.error_code * string) result
(** Send every worker its [shard <i> <n> <key> <addrs>] identity. *)

val reset : t -> (unit, Coral_server.Protocol.error_code * string) result
val send_edb : t -> string -> (unit, Coral_server.Protocol.error_code * string) result
val send_program : t -> string -> (unit, Coral_server.Protocol.error_code * string) result

val send_delta :
  t -> shard:int -> string -> (unit, Coral_server.Protocol.error_code * string) result
(** Ship one shard a fact batch into its exchange buffer, absorbed at
    its next promote.  Used before [run_fixpoint] to seed partitioned
    predicates that also have consulted base facts; pass the total
    count as [run_fixpoint]'s [seeded]. *)

val run_fixpoint :
  ?progress:(round:int -> new_tuples:int -> shipped:int -> unit) ->
  ?seeded:int ->
  t ->
  (run_stats, Coral_server.Protocol.error_code * string) result
(** Run rounds until global quiescence.  [seeded] (default 0) is the
    tuple count pre-shipped with [send_delta]: round 1's
    shipped-equals-received balance check subtracts it.  Worker errors
    propagate under their original codes; an unreachable worker yields
    [UNAVAIL].

    With observability enabled, every round records a [dist.round]
    span and JSONL event (wall/step-max times, skew ratio, and a
    [straggler] field naming any flagged shard), and control-plane
    commands carry the calling thread's trace id as a [tid=] token so
    worker-side spans join the same trace. *)
