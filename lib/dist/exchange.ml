(* The per-worker exchange buffer: tuples waiting for the next promote
   barrier.

   Two sources feed it during a [barrier step]: delta batches arriving
   from peer shards (their connection threads call [add_remote] with
   no engine lock — this mutex is the only synchronization, so a step
   holding the store's write lane can never deadlock against an
   incoming delta), and the worker's own locally-derived owned tuples
   ([add_local]).  [drain] empties both at the promote barrier.

   The remote counter counts every tuple decoded from a delta batch,
   before any deduplication, so that the coordinator's quiescence
   check (sum of shipped = sum of received, per round) balances
   exactly. *)

type item = { pred : string; arity : int; tuple : Coral.Tuple.t }

type t = {
  lock : Mutex.t;
  mutable remote : item list;  (* newest first *)
  mutable local : item list;
  mutable remote_round : int;  (* tuples received since the last drain *)
  mutable remote_total : int;  (* since the last reset *)
  mutable batches_total : int;
}

let create () =
  { lock = Mutex.create ();
    remote = [];
    local = [];
    remote_round = 0;
    remote_total = 0;
    batches_total = 0
  }

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let add_remote t items =
  with_lock t (fun () ->
      let n = List.length items in
      t.remote <- List.rev_append items t.remote;
      t.remote_round <- t.remote_round + n;
      t.remote_total <- t.remote_total + n;
      t.batches_total <- t.batches_total + 1;
      n)

let add_local t items =
  with_lock t (fun () -> t.local <- List.rev_append items t.local)

(* Arrival order within each source, remote before local; the counter
   returned is the round's pre-dedup received count for the promote
   reply. *)
let drain t =
  with_lock t (fun () ->
      let remote = List.rev t.remote and local = List.rev t.local in
      let received = t.remote_round in
      t.remote <- [];
      t.local <- [];
      t.remote_round <- 0;
      remote @ local, received)

let reset t =
  with_lock t (fun () ->
      t.remote <- [];
      t.local <- [];
      t.remote_round <- 0;
      t.remote_total <- 0;
      t.batches_total <- 0)

let totals t = with_lock t (fun () -> t.remote_total, t.batches_total)
