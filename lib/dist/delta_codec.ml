(* Delta batches on the wire are ordinary CORAL fact text — one
   "pred(arg, ...)."  line per tuple — so the exchange reuses the
   parser and the term printers, round-trips every storable value
   (strings print with OCaml %S quoting), and stays debuggable by
   pasting a batch into a REPL.  A batch decodes to plain facts; the
   receiving worker buffers them until the next promote barrier. *)

open Coral

let fact_line name (tuple : Tuple.t) =
  let buf = Buffer.create 48 in
  Buffer.add_string buf name;
  if Array.length tuple.Tuple.terms > 0 then begin
    Buffer.add_char buf '(';
    Array.iteri
      (fun i t ->
        if i > 0 then Buffer.add_string buf ", ";
        Buffer.add_string buf (Term.to_string t))
      tuple.Tuple.terms;
    Buffer.add_char buf ')'
  end;
  Buffer.add_char buf '.';
  Buffer.contents buf

let decode text : (Ast.atom list, string) result =
  match Parser.program text with
  | Error e -> Error (Format.asprintf "%a" Parser.pp_error e)
  | Ok items ->
    let rec facts acc = function
      | [] -> Ok (List.rev acc)
      | Ast.Fact a :: rest ->
        if Array.for_all Term.is_ground a.Ast.args then facts (a :: acc) rest
        else Error "a delta batch must contain only ground facts"
      | _ :: _ -> Error "a delta batch must contain only facts"
    in
    facts [] items
