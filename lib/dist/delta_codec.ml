(* Delta batches on the wire are ordinary CORAL fact text — one
   "pred(arg, ...)."  line per tuple — so the exchange reuses the
   parser and the term printers, round-trips every storable value
   (strings print with OCaml %S quoting), and stays debuggable by
   pasting a batch into a REPL.  A batch decodes to plain facts; the
   receiving worker buffers them until the next promote barrier.

   Printing must be an exact inverse of the parser: a tuple that
   changes value — or type — in transit silently diverges the cluster
   from single-node semantics, and can even hash to a different owner
   shard and trip the misrouted-delta check.  The stock [Term.pp]
   prints doubles with %g (6 significant digits: 2.0 becomes "2",
   which re-parses as an Int), so doubles get their own lossless
   printer here; values with no fact syntax at all (non-finite
   doubles, opaque builtin values) raise [Unencodable] rather than
   ship a lie. *)

open Coral

exception Unencodable of string

(* Value.repr_double is the shortest decimal that round-trips through
   [float_of_string], with a '.' forced into the mantissa so the lexer
   reads it back as a FLOAT (plain "2" or "1e+300" would lex as
   integers). *)
let double_repr f =
  if not (Float.is_finite f) then
    raise (Unencodable (Printf.sprintf "non-finite double %h has no fact syntax" f));
  Value.repr_double f

let rec term_repr buf (t : Term.t) =
  match t with
  | Term.Const (Value.Double f) -> Buffer.add_string buf (double_repr f)
  | Term.Const (Value.Opaque _) ->
    raise (Unencodable (Term.to_string t ^ " (opaque value) has no fact syntax"))
  | Term.Const _ | Term.Var _ | Term.App { args = [||]; _ } ->
    Buffer.add_string buf (Term.to_string t)
  | Term.App { sym; args; _ } when Symbol.equal sym Symbol.cons && Array.length args = 2 ->
    Buffer.add_char buf '[';
    let rec go first = function
      | Term.App { sym; args = [||]; _ } when Symbol.equal sym Symbol.nil -> ()
      | Term.App { sym; args = [| h; tl |]; _ } when Symbol.equal sym Symbol.cons ->
        if not first then Buffer.add_string buf ", ";
        term_repr buf h;
        go false tl
      | tail ->
        Buffer.add_string buf " | ";
        term_repr buf tail
    in
    go true t;
    Buffer.add_char buf ']'
  | Term.App { sym; args; _ } ->
    Buffer.add_string buf (Symbol.name sym);
    Buffer.add_char buf '(';
    Array.iteri
      (fun i a ->
        if i > 0 then Buffer.add_string buf ", ";
        term_repr buf a)
      args;
    Buffer.add_char buf ')'

let fact_line name (tuple : Tuple.t) =
  let buf = Buffer.create 48 in
  Buffer.add_string buf name;
  if Array.length tuple.Tuple.terms > 0 then begin
    Buffer.add_char buf '(';
    Array.iteri
      (fun i t ->
        if i > 0 then Buffer.add_string buf ", ";
        term_repr buf t)
      tuple.Tuple.terms;
    Buffer.add_char buf ')'
  end;
  Buffer.add_char buf '.';
  Buffer.contents buf

let decode text : (Ast.atom list, string) result =
  match Parser.program text with
  | Error e -> Error (Format.asprintf "%a" Parser.pp_error e)
  | Ok items ->
    let rec facts acc = function
      | [] -> Ok (List.rev acc)
      | Ast.Fact a :: rest ->
        if Array.for_all Term.is_ground a.Ast.args then facts (a :: acc) rest
        else Error "a delta batch must contain only ground facts"
      | _ :: _ -> Error "a delta batch must contain only facts"
    in
    facts [] items
