(* Hash partitioning: which shard owns a tuple.

   Every worker (and the router) computes ownership independently from
   the tuple's content — [Tuple.partition_hash] is process-stable, so
   no ownership table or coordination message exists anywhere.  The
   key argument defaults to 0: for the common binary derived relations
   (path/2, sg/2) that partitions on the first column, which is also
   the column bound by bf-adorned queries, so a bound query touches
   one shard's stored partition. *)

type t = { shards : int; key : int }

let create ~shards ~key = { shards = max 1 shards; key = max 0 key }

let shards t = t.shards
let key t = t.key

let owner t tuple =
  if t.shards <= 1 then 0 else Coral.Tuple.partition_hash ~key:t.key tuple mod t.shards

let owns t ~shard tuple = owner t tuple = shard
