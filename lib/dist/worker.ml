(* The per-shard evaluation loop behind the cluster control plane.

   A worker owns one partition of every derived relation and a full
   replica of the base relations.  It never installs the distributed
   program into its engine as modules: derived relations are
   materialized as ordinary base relations ([path], plus a [path@delta]
   sibling holding the tuples new in the last promote), and each
   global round evaluates rule bodies directly with [Engine.query] —
   Init rules against the replicated EDB, Linear rules with their one
   derived body literal retargeted at the [@delta] relation.  Queries
   arriving from the router then need nothing special: the answers are
   sitting in base relations.

   Concurrency contract: [barrier]/[dprog]/[dreset] arrive serialized
   on the coordinator's connection and take the store's write lane
   ([commit]) or read lane ([locked]); [delta] batches arrive on peer
   connection threads and touch only the exchange buffer's private
   mutex, so a step that is blocked sending its own deltas can always
   absorb incoming ones.  [step] replies only after every shipped
   batch is acknowledged, which is what lets the coordinator treat
   "all steps replied" as "no delta in flight". *)

open Coral
open Coral_server
module Obs = Coral_obs.Obs

let delta_suffix = "@delta"

type config = {
  part : Partition.t;
  self : int;
  peers : Shard_client.t option array;  (* [None] at our own index *)
}

type t = {
  eng : Engine.t;
  commit : invalidate:bool -> (unit -> unit) -> unit;
      (* the store's write lane: promotes are ordinary MVCC commits *)
  locked : (unit -> unit) -> unit;  (* the read lane, for step evaluation *)
  budget : unit -> int;  (* max promoted tuples per fixpoint; 0 = none *)
  exchange : Exchange.t;
  mutable config : config option;
  mutable prog : Plan.analysis option;
  mutable derived_total : int;
  mutable shipped_total : int;
  mutable shipped_bytes : int;
  mutable promoted_total : int;
  mutable rounds_total : int;
  mutable fault_step_delay_s : float;
      (* test seam: sleep this long inside every barrier step, turning
         this worker into a deterministic straggler *)
}

let create ~eng ~commit ~locked ~budget =
  { eng;
    commit;
    locked;
    budget;
    exchange = Exchange.create ();
    config = None;
    prog = None;
    derived_total = 0;
    shipped_total = 0;
    shipped_bytes = 0;
    promoted_total = 0;
    rounds_total = 0;
    fault_step_delay_s = 0.
  }

(* Fault seam for tests and drills: make every step this much slower,
   so straggler detection can be exercised deterministically. *)
let set_fault_step_delay t seconds = t.fault_step_delay_s <- Float.max 0. seconds

let stats t =
  let received, batches = Exchange.totals t.exchange in
  [ "dist.derived_total", t.derived_total;
    "dist.shipped_total", t.shipped_total;
    "dist.shipped_bytes", t.shipped_bytes;
    "dist.received_total", received;
    "dist.received_batches", batches;
    "dist.promoted_total", t.promoted_total;
    "dist.rounds_total", t.rounds_total
  ]

(* ------------------------------------------------------------------ *)
(* Configuration                                                       *)
(* ------------------------------------------------------------------ *)

let drop_peers t =
  match t.config with
  | None -> ()
  | Some cfg -> Array.iter (Option.iter Shard_client.disconnect) cfg.peers

let disconnect = drop_peers

let do_shard t ~index ~count ~key ~peer_addrs =
  drop_peers t;
  let peers =
    Array.of_list peer_addrs
    |> Array.mapi (fun i addr -> if i = index then None else Some (Shard_client.create addr))
  in
  t.config <- Some { part = Partition.create ~shards:count ~key; self = index; peers };
  Protocol.ok ~detail:(Printf.sprintf "shard=%d/%d key=%d" index count key) []

(* ------------------------------------------------------------------ *)
(* Program installation                                                *)
(* ------------------------------------------------------------------ *)

let full_rel t name arity = Engine.base_relation t.eng (Symbol.intern name) arity
let delta_rel t name arity = Engine.base_relation t.eng (Symbol.intern (name ^ delta_suffix)) arity

let do_dprog t text =
  match Plan.analyse_text text with
  | Plan.Local reason ->
    Protocol.err Protocol.Cluster ("program is not distributable: " ^ reason)
  | Plan.Distributable a ->
    t.commit ~invalidate:true (fun () ->
        List.iter
          (fun (name, arity) ->
            ignore (full_rel t name arity);
            ignore (delta_rel t name arity))
          a.Plan.idb;
        t.prog <- Some a);
    Protocol.ok
      ~detail:
        (Printf.sprintf "rules=%d idb=%d" (List.length a.Plan.drules)
           (List.length a.Plan.idb))
      []

(* ------------------------------------------------------------------ *)
(* Delta intake (peer connection threads)                              *)
(* ------------------------------------------------------------------ *)

let do_delta t text =
  match t.config, t.prog with
  | None, _ | _, None ->
    Protocol.err Protocol.Cluster "delta before shard/dprog configuration"
  | Some cfg, Some prog -> begin
    match Delta_codec.decode text with
    | Error m -> Protocol.err Protocol.Proto ("bad delta batch: " ^ m)
    | Ok atoms ->
      let check_item (a : Ast.atom) =
        let name = Symbol.name a.Ast.pred in
        let arity = Array.length a.Ast.args in
        if not (List.mem (name, arity) prog.Plan.idb) then
          Error (Printf.sprintf "delta for non-derived predicate %s/%d" name arity)
        else begin
          let tuple = Tuple.of_terms a.Ast.args in
          if Partition.owner cfg.part tuple <> cfg.self then
            Error (Printf.sprintf "misrouted delta tuple %s" (Tuple.to_string tuple))
          else Ok { Exchange.pred = name; arity; tuple }
        end
      in
      let rec convert acc = function
        | [] -> Ok (List.rev acc)
        | a :: rest -> (
          match check_item a with
          | Ok item -> convert (item :: acc) rest
          | Error m -> Error m)
      in
      (match convert [] atoms with
      | Error m -> Protocol.err Protocol.Cluster m
      | Ok items ->
        let n = Exchange.add_remote t.exchange items in
        Protocol.ok ~detail:(Printf.sprintf "received=%d" n) [])
  end

(* ------------------------------------------------------------------ *)
(* Barrier step: one local round + delta shipping                      *)
(* ------------------------------------------------------------------ *)

(* Retarget the rule's one derived body literal at its @delta sibling,
   in place, preserving literal order (and with it the planner's
   binding propagation). *)
let delta_body (r : Ast.rule) i =
  List.mapi
    (fun j lit ->
      if j <> i then lit
      else
        match lit with
        | Ast.Pos a ->
          Ast.Pos { a with Ast.pred = Symbol.intern (Symbol.name a.Ast.pred ^ delta_suffix) }
        | _ -> lit)
    r.Ast.body

(* Instantiate the rule head under one answer row.  [Engine.query]
   renumbers variables but preserves their names, so the head's
   variables are matched to query columns by name. *)
let head_tuples (r : Ast.rule) (res : Engine.query_result) =
  let col_of_name = Hashtbl.create 8 in
  List.iteri
    (fun i (v : Term.var) -> Hashtbl.replace col_of_name v.Term.vname i)
    res.Engine.qvars;
  let head = Ast.atom_of_head r.Ast.head in
  List.map
    (fun row ->
      Array.map
        (fun arg ->
          Term.map_vars
            (fun (v : Term.var) ->
              match Hashtbl.find_opt col_of_name v.Term.vname with
              | Some i -> row.(i)
              | None -> Term.Var v)
            arg)
        head.Ast.args
      |> Tuple.of_terms)
    res.Engine.rows

(* Per-round duplicate table: (pred, variant-hash) buckets compared
   with variant equality, same discipline as relation storage. *)
let seen_add seen pred (tuple : Tuple.t) =
  let key = pred, tuple.Tuple.hash in
  let bucket = try Hashtbl.find seen key with Not_found -> [] in
  if List.exists (Tuple.equal tuple) bucket then false
  else begin
    Hashtbl.replace seen key (tuple :: bucket);
    true
  end

let do_step t round =
  match t.config, t.prog with
  | None, _ | _, None -> Protocol.err Protocol.Cluster "barrier before shard/dprog"
  | Some cfg, Some prog ->
    let derived = ref 0 in
    let shipped_count = ref 0 in
    (* Runs on the coordinator's connection thread, where the wire
       trace id is installed — so this span lands in the distributed
       trace with the right tid. *)
    Obs.Span.with_
      ~attrs:(fun () ->
        [ "round", string_of_int round;
          "shard", string_of_int cfg.self;
          "derived", string_of_int !derived;
          "shipped", string_of_int !shipped_count
        ])
      "dist.step"
    @@ fun () ->
    if t.fault_step_delay_s > 0. then Thread.delay t.fault_step_delay_s;
    t.rounds_total <- t.rounds_total + 1;
    let local = ref [] in
    let outbound = Array.make (Array.length cfg.peers) [] in
    let seen = Hashtbl.create 64 in
    t.locked (fun () ->
        List.iter
          (fun (d : Plan.drule) ->
            let body =
              match d.Plan.cls, round with
              | Plan.Init, 1 -> Some d.Plan.rule.Ast.body
              | Plan.Init, _ -> None
              | Plan.Linear _, 1 -> None
              | Plan.Linear i, _ -> Some (delta_body d.Plan.rule i)
            in
            match body with
            | None -> ()
            | Some body ->
              let head = Ast.atom_of_head d.Plan.rule.Ast.head in
              let name = Symbol.name head.Ast.pred in
              let arity = Array.length head.Ast.args in
              let full = full_rel t name arity in
              let res = Engine.query t.eng body in
              List.iter
                (fun tuple ->
                  if (not (Relation.mem full tuple)) && seen_add seen name tuple then begin
                    let owner = Partition.owner cfg.part tuple in
                    let item = { Exchange.pred = name; arity; tuple } in
                    match d.Plan.cls with
                    | Plan.Init ->
                      (* every shard derives the same Init tuples from
                         the replicated EDB: keep ours, ship nothing *)
                      if owner = cfg.self then begin
                        incr derived;
                        local := item :: !local
                      end
                    | Plan.Linear _ ->
                      incr derived;
                      if owner = cfg.self then local := item :: !local
                      else outbound.(owner) <- item :: outbound.(owner)
                  end)
                (head_tuples d.Plan.rule res))
          prog.Plan.drules);
    Exchange.add_local t.exchange (List.rev !local);
    t.derived_total <- t.derived_total + !derived;
    (* Ship each destination its batch and wait for the ack: when this
       reply goes out, no delta of ours is still in flight. *)
    let ship dest items =
      match cfg.peers.(dest) with
      | None -> Ok (0, 0)  (* own bucket is always empty; defensive *)
      | Some peer ->
        let lines = List.rev_map (fun i -> Delta_codec.fact_line i.Exchange.pred i.Exchange.tuple) items in
        let payload = String.concat "\n" (List.rev lines) ^ "\n" in
        let n = List.length items in
        (match
           Shard_client.request peer
             ~payload
             (Printf.sprintf "delta# %d" (String.length payload))
         with
        | _, status when Shard_client.status_ok status <> None ->
          t.shipped_total <- t.shipped_total + n;
          t.shipped_bytes <- t.shipped_bytes + String.length payload;
          Ok (n, String.length payload)
        | _, status -> Error (Printf.sprintf "%s rejected delta: %s" (Shard_client.addr peer) status)
        | exception Shard_client.Down m -> Error m)
    in
    let rec ship_all dest shipped bytes =
      if dest >= Array.length outbound then Ok (shipped, bytes)
      else if outbound.(dest) = [] then ship_all (dest + 1) shipped bytes
      else
        match ship dest outbound.(dest) with
        | Ok (n, b) -> ship_all (dest + 1) (shipped + n) (bytes + b)
        | Error m -> Error m
    in
    (match ship_all 0 0 0 with
    | Error m -> Protocol.err Protocol.Unavail ("peer unreachable mid-round: " ^ m)
    | exception Delta_codec.Unencodable m ->
      (* a derived value the codec cannot round-trip (a rule computed
         a non-finite double, say) must fail the round loudly, not
         ship a lie to its owner *)
      Protocol.err Protocol.Cluster ("derived tuple cannot be shipped: " ^ m)
    | Ok (shipped, bytes) ->
      shipped_count := shipped;
      Protocol.ok
        ~detail:(Printf.sprintf "derived=%d shipped=%d bytes=%d" !derived shipped bytes)
        [])

(* ------------------------------------------------------------------ *)
(* Barrier promote: absorb the exchange into full + delta relations    *)
(* ------------------------------------------------------------------ *)

let do_promote t round =
  match t.config, t.prog with
  | None, _ | _, None -> Protocol.err Protocol.Cluster "barrier before shard/dprog"
  | Some cfg, Some prog ->
    let fresh = ref 0 in
    let received = ref 0 in
    Obs.Span.with_
      ~attrs:(fun () ->
        [ "round", string_of_int round;
          "shard", string_of_int cfg.self;
          "new", string_of_int !fresh;
          "received", string_of_int !received
        ])
      "dist.promote"
    @@ fun () ->
    t.commit ~invalidate:true (fun () ->
        let items, recv = Exchange.drain t.exchange in
        received := recv;
        List.iter (fun (name, arity) -> Relation.clear (delta_rel t name arity)) prog.Plan.idb;
        List.iter
          (fun item ->
            let full = full_rel t item.Exchange.pred item.Exchange.arity in
            if Relation.insert full item.Exchange.tuple then begin
              incr fresh;
              ignore (Relation.insert (delta_rel t item.Exchange.pred item.Exchange.arity) item.Exchange.tuple)
            end)
          items);
    t.promoted_total <- t.promoted_total + !fresh;
    let budget = t.budget () in
    if budget > 0 && t.promoted_total > budget then
      Protocol.err Protocol.Resource
        (Printf.sprintf
           "distributed fixpoint exceeded this worker's tuple budget (%d promoted > %d)"
           t.promoted_total budget)
    else
      Protocol.ok ~detail:(Printf.sprintf "new=%d received=%d" !fresh !received) []

(* ------------------------------------------------------------------ *)
(* Reset                                                               *)
(* ------------------------------------------------------------------ *)

let do_dreset t =
  Exchange.reset t.exchange;
  (* Clear every base relation, not just the derived ones: the router
     reprovisions a dirty cluster from scratch (dreset, re-ship the
     EDB, dprog, rerun the fixpoint), and the invariant that makes
     that simple is that a reset worker holds exactly what the router
     ships next — including after a retract upstream. *)
  t.commit ~invalidate:true (fun () ->
      List.iter
        (fun (key, _card) ->
          match String.rindex_opt key '/' with
          | None -> ()
          | Some i -> (
            let name = String.sub key 0 i in
            let arity =
              int_of_string_opt (String.sub key (i + 1) (String.length key - i - 1))
            in
            match arity with
            | None -> ()
            | Some arity -> (
              match Engine.relation_of t.eng (Symbol.intern name) arity with
              | Some rel -> Relation.clear rel
              | None -> ())))
        (Engine.list_relations t.eng));
  t.derived_total <- 0;
  t.shipped_total <- 0;
  t.shipped_bytes <- 0;
  t.promoted_total <- 0;
  t.rounds_total <- 0;
  Protocol.ok ~detail:"reset" []

(* ------------------------------------------------------------------ *)

let handle t (req : Protocol.request) =
  match req with
  | Protocol.Shard { index; count; key; peers } ->
    do_shard t ~index ~count ~key ~peer_addrs:peers
  | Protocol.Dprog text -> do_dprog t text
  | Protocol.Delta text -> do_delta t text
  | Protocol.Barrier (Protocol.Step, r) -> do_step t r
  | Protocol.Barrier (Protocol.Promote, r) -> do_promote t r
  | Protocol.Dreset -> do_dreset t
  | _ -> Protocol.err Protocol.Proto "not a cluster request"
