(* A connection to one worker shard, speaking the ordinary line
   protocol.

   Reconnection policy: retry with linear backoff at CONNECT time
   only.  A request that fails mid-flight raises [Down] without any
   resend — the worker may have applied the request before the link
   died (a resent delta batch would then be received twice, breaking
   the coordinator's shipped-equals-received balance check), so the
   only safe recovery is at a higher level: the router marks the
   cluster state dirty and reruns the fixpoint from [dreset].

   Each client is mutexed: the coordinator's barrier threads and a
   query fan-out thread must not interleave request/reply pairs on one
   socket. *)

open Coral_server

exception Down of string

type conn = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

type t = {
  addr : string;
  attempts : int;
  backoff_ms : int;
  lock : Mutex.t;
  mutable conn : conn option;
}

let create ?(attempts = 5) ?(backoff_ms = 50) addr =
  { addr; attempts = max 1 attempts; backoff_ms = max 0 backoff_ms;
    lock = Mutex.create (); conn = None }

let addr t = t.addr

let sockaddr_of target =
  match String.rindex_opt target ':' with
  | Some i ->
    let host = String.sub target 0 i in
    let port = String.sub target (i + 1) (String.length target - i - 1) in
    (match int_of_string_opt port with
    | Some port -> begin
      match Unix.getaddrinfo host (string_of_int port) [ Unix.AI_SOCKTYPE Unix.SOCK_STREAM ] with
      | { Unix.ai_addr; _ } :: _ -> ai_addr
      | [] -> Unix.ADDR_INET (Unix.inet_addr_loopback, port)
    end
    | None -> Unix.ADDR_UNIX target)
  | None -> Unix.ADDR_UNIX target

let close_conn c =
  try Unix.close c.fd with Unix.Unix_error _ -> ()

let disconnect t =
  Mutex.lock t.lock;
  (match t.conn with Some c -> close_conn c | None -> ());
  t.conn <- None;
  Mutex.unlock t.lock

let connect_once addr =
  let sa = sockaddr_of addr in
  let fd = Unix.socket (Unix.domain_of_sockaddr sa) Unix.SOCK_STREAM 0 in
  try
    Unix.connect fd sa;
    { fd; ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd }
  with e ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    raise e

(* Linear backoff: attempt k sleeps k * backoff_ms before retrying.
   Retrying here is safe — nothing has been sent yet. *)
let ensure_conn t =
  match t.conn with
  | Some c -> c
  | None ->
    let rec go k =
      match connect_once t.addr with
      | c ->
        t.conn <- Some c;
        c
      | exception Unix.Unix_error (e, _, _) ->
        if k >= t.attempts then
          raise
            (Down
               (Printf.sprintf "cannot connect to %s after %d attempts: %s" t.addr
                  t.attempts (Unix.error_message e)))
        else begin
          Thread.delay (float_of_int (k * t.backoff_ms) /. 1000.);
          go (k + 1)
        end
    in
    go 1

(* Read reply lines until the ok/err status line. *)
let read_reply t c =
  let rec go acc =
    match Protocol.read_line_capped c.ic with
    | None -> raise (Down (Printf.sprintf "%s closed the connection mid-reply" t.addr))
    | Some line ->
      if Protocol.is_status line then List.rev acc, line else go (line :: acc)
  in
  go []

(* One request/reply exchange.  [payload] is sent verbatim after the
   command line (for dprog#/delta#/consult# framing).  Any IO failure
   poisons the connection: close it, raise [Down], never resend. *)
let request t ?payload cmd =
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () ->
      let c = ensure_conn t in
      try
        Out_channel.output_string c.oc cmd;
        Out_channel.output_char c.oc '\n';
        (match payload with
        | Some p -> Out_channel.output_string c.oc p
        | None -> ());
        Out_channel.flush c.oc;
        read_reply t c
      with
      | Down _ as e ->
        close_conn c;
        t.conn <- None;
        raise e
      | Sys_error m | Failure m ->
        close_conn c;
        t.conn <- None;
        raise (Down (Printf.sprintf "%s: %s" t.addr m))
      | Unix.Unix_error (e, _, _) ->
        close_conn c;
        t.conn <- None;
        raise (Down (Printf.sprintf "%s: %s" t.addr (Unix.error_message e)))
      | End_of_file | Protocol.Line_too_long ->
        close_conn c;
        t.conn <- None;
        raise (Down (Printf.sprintf "%s: connection lost" t.addr)))

(* One-shot exchange on a fresh connection: connect (single attempt),
   request, read the reply, close.  The observability scrapes (metrics
   federation, trace pulls) use this instead of the cluster's pooled
   clients so a slow scrape can never hold the fixpoint's connection
   mutex — and a down worker answers [Error] immediately rather than
   sitting through the pooled client's reconnect backoff. *)
let fetch ?payload addr cmd =
  match connect_once addr with
  | exception Unix.Unix_error (e, _, _) ->
    Error (Printf.sprintf "%s: %s" addr (Unix.error_message e))
  | c ->
    Fun.protect
      ~finally:(fun () -> close_conn c)
      (fun () ->
        try
          Out_channel.output_string c.oc cmd;
          Out_channel.output_char c.oc '\n';
          (match payload with
          | Some p -> Out_channel.output_string c.oc p
          | None -> ());
          Out_channel.flush c.oc;
          let rec go acc =
            match Protocol.read_line_capped c.ic with
            | None -> Error (Printf.sprintf "%s closed the connection mid-reply" addr)
            | Some line ->
              if Protocol.is_status line then Ok (List.rev acc, line) else go (line :: acc)
          in
          go []
        with
        | Sys_error m | Failure m -> Error (Printf.sprintf "%s: %s" addr m)
        | Unix.Unix_error (e, _, _) ->
          Error (Printf.sprintf "%s: %s" addr (Unix.error_message e))
        | End_of_file | Protocol.Line_too_long ->
          Error (Printf.sprintf "%s: connection lost" addr))

(* ------------------------------------------------------------------ *)
(* Status-line helpers                                                 *)
(* ------------------------------------------------------------------ *)

let status_ok line =
  if line = "ok" then Some ""
  else if String.starts_with ~prefix:"ok " line then
    Some (String.sub line 3 (String.length line - 3))
  else None

let status_err line =
  if String.starts_with ~prefix:"err " line then begin
    let rest = String.sub line 4 (String.length line - 4) in
    match String.index_opt rest ' ' with
    | None -> Some (rest, "")
    | Some i ->
      Some (String.sub rest 0 i, String.sub rest (i + 1) (String.length rest - i - 1))
  end
  else None

(* Parse "k1=v1 k2=v2 ..." ok-detail into an assoc list; tokens
   without '=' are ignored. *)
let kv_pairs detail =
  String.split_on_char ' ' detail
  |> List.filter_map (fun tok ->
         match String.index_opt tok '=' with
         | Some i when i > 0 ->
           Some
             ( String.sub tok 0 i,
               String.sub tok (i + 1) (String.length tok - i - 1) )
         | _ -> None)

let kv_int pairs key = Option.bind (List.assoc_opt key pairs) int_of_string_opt
