(** A mutexed line-protocol connection to one worker shard.

    Retry with backoff happens at connect time only.  A request that
    fails mid-flight raises {!Down} and poisons the connection — no
    resend, because the worker may already have applied it (a resent
    delta batch would be counted twice and break the coordinator's
    shipped-equals-received balance).  Recovery is the router's job:
    mark the cluster dirty, rerun the fixpoint from [dreset]. *)

exception Down of string

type t

val create : ?attempts:int -> ?backoff_ms:int -> string -> t
(** [create addr] — [addr] is [host:port] or a Unix socket path.  No
    connection is made until the first {!request}. *)

val addr : t -> string

val disconnect : t -> unit

val request : t -> ?payload:string -> string -> string list * string
(** Send one command line (plus optional raw payload bytes for
    [dprog#]/[delta#]/[consult#]) and read the reply: payload lines
    and the final [ok]/[err] status line.
    @raise Down on any IO failure. *)

val fetch :
  ?payload:string -> string -> string -> (string list * string, string) result
(** [fetch addr cmd]: one request/reply exchange on a fresh, one-shot
    connection (single connect attempt, closed after the reply).  Used
    by the router's observability scrapes — metrics federation and
    trace pulls — so they never contend on a pooled client's mutex,
    and a down worker reports [Error] immediately. *)

val status_ok : string -> string option
(** [Some detail] if the status line is [ok ...]. *)

val status_err : string -> (string * string) option
(** [Some (code, message)] if the status line is [err CODE ...]. *)

val kv_pairs : string -> (string * string) list
(** Parse ["k1=v1 k2=v2"] ok-detail into an assoc list. *)

val kv_int : (string * string) list -> string -> int option
