(** Hash partitioning: which shard owns a tuple.

    Ownership is a pure function of tuple content
    ({!Coral.Tuple.partition_hash} on the key argument, mod the shard
    count), so workers and the router agree without any coordination
    state. *)

type t

val create : shards:int -> key:int -> t
(** [shards] is clamped to >= 1, [key] to >= 0. *)

val shards : t -> int
val key : t -> int

val owner : t -> Coral.Tuple.t -> int
(** The shard index (0-based) owning this tuple. *)

val owns : t -> shard:int -> Coral.Tuple.t -> bool
