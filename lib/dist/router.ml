(* The fan-out router: the cluster's front door.

   To a client the router IS a coral_server — same protocol, same
   commands, same error codes; the REPL's [--connect], [ps]/[kill],
   [stats]/[metrics] all work unchanged.  It holds a full single-node
   replica of the consulted program (so any request it cannot
   distribute is answered locally, with ordinary single-node
   semantics) and, when the program falls in the distributable class,
   materializes the derived relations across its workers and fans
   queries out to them.

   Cluster lifecycle is a two-state machine guarded by one mutex:

     Dirty  the workers' materialized state does not reflect the
            router's database (fresh start, a consult/insert landed, a
            query mutated the replica through assert/retract, a worker
            went unreachable).  The first distributed query
            reprovisions from scratch — configure, dreset, re-ship the
            EDB, ship the program, seed the partitioned predicates'
            consulted facts to their owner shards, run the fixpoint to
            quiescence — and moves to Clean.  Reprovisioning wholesale
            instead of incrementally keeps exactly one code path whose
            postcondition is "worker state equals router state".
     Clean  distributed queries fan out and merge.

   Fan-out merge needs no deduplication: the one distributed literal
   in a fanned-out query is instantiated by each answer row, the
   instantiated tuple has exactly one owner shard, so two shards can
   never produce the same row.

   Every query — local or distributed — registers in the process-wide
   Query_log, so [ps] sees it and [kill] aborts it; a killed or
   timed-out fan-out abandons its worker threads (each closes its own
   connection when it notices). *)

open Coral_server
module Obs = Coral_obs.Obs

type fanout = {
  slots : (Protocol.response, Protocol.error_code * string) result option array;
  threads : Thread.t list;
}

type t = {
  fd : Unix.file_descr;
  bound_port : int;
  sock_path : string option;
  sstore : Session.store;
  coord : Coordinator.t;
  cl_lock : Mutex.t;  (* guards dirty / verdict / last_run / last_tid *)
  mutable dirty : bool;
  mutable verdict : Plan.verdict;
  mutable last_run : Coordinator.run_stats option;
  mutable last_tid : string option;  (* trace id of the newest distributed query *)
  mutable closed : bool;
  mutable accept_thread : Thread.t option;
  (* registry-backed, created at start (no module-level state) *)
  c_dist : Coral_obs.Obs.Counter.t;
  c_local : Coral_obs.Obs.Counter.t;
  c_fixpoints : Coral_obs.Obs.Counter.t;
  c_resyncs : Coral_obs.Obs.Counter.t;
}

let ignore_sigpipe () =
  try ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore)
  with Invalid_argument _ | Sys_error _ -> ()

(* ------------------------------------------------------------------ *)
(* Cluster provisioning                                                *)
(* ------------------------------------------------------------------ *)

(* Iterate the router's base relations, skipping reserved @ names. *)
let iter_base_relations eng f =
  List.iter
    (fun (key, _card) ->
      match String.rindex_opt key '/' with
      | None -> ()
      | Some i -> (
        let name = String.sub key 0 i in
        match int_of_string_opt (String.sub key (i + 1) (String.length key - i - 1)) with
        | None -> ()
        | Some arity ->
          if not (String.contains name '@') then begin
            match Coral.Engine.relation_of eng (Coral.Symbol.intern name) arity with
            | None -> ()
            | Some rel -> f name arity rel
          end))
    (Coral.Engine.list_relations eng)

(* Dump the router's base relations (the replicated EDB) as fact
   lines.  Derived predicates and the @delta siblings are excluded —
   the workers rebuild those themselves. *)
let edb_text t (a : Plan.analysis) =
  let eng = Coral.engine (Session.db t.sstore) in
  let buf = Buffer.create 4096 in
  Session.locked t.sstore (fun () ->
      iter_base_relations eng (fun name arity rel ->
          if not (List.mem (name, arity) a.Plan.idb) then
            Seq.iter
              (fun tuple ->
                Buffer.add_string buf (Delta_codec.fact_line name tuple);
                Buffer.add_char buf '\n')
              (Coral.Relation.scan rel ())))
  ;
  Buffer.contents buf

(* A predicate defined by rules can ALSO be seeded with consulted
   facts (path(a, b). plus recursive path rules).  Those facts live in
   the router's base relations but are excluded from the replicated
   EDB — each belongs to exactly one owner shard.  Ship them as
   per-owner delta batches: they sit in the owner's exchange buffer,
   are absorbed into full + @delta at the first promote, and from
   round 2 on the linear rules derive from them like any other delta.
   Returns the per-shard batches plus the total seeded count. *)
let seed_batches t (a : Plan.analysis) =
  let eng = Coral.engine (Session.db t.sstore) in
  let part = Coordinator.partition t.coord in
  let batches = Array.init (Coordinator.shards t.coord) (fun _ -> Buffer.create 256) in
  let count = ref 0 in
  Session.locked t.sstore (fun () ->
      iter_base_relations eng (fun name arity rel ->
          if List.mem (name, arity) a.Plan.idb then
            Seq.iter
              (fun tuple ->
                let buf = batches.(Partition.owner part tuple) in
                Buffer.add_string buf (Delta_codec.fact_line name tuple);
                Buffer.add_char buf '\n';
                incr count)
              (Coral.Relation.scan rel ())));
  batches, !count

(* Reprovision the cluster from the router's database.  Caller holds
   [cl_lock]. *)
let resync t (a : Plan.analysis) =
  Coral_obs.Obs.Counter.incr t.c_resyncs;
  (* Reprovisioning must talk to whatever listens at each address NOW,
     not to a control connection established before the cluster went
     dirty: a worker restarted on the same address would otherwise get
     the deltas (its peers reconnect) but never the shard/dprog
     configuration (still riding the stale control session). *)
  Coordinator.disconnect t.coord;
  let ( >>= ) r f = Result.bind r f in
  match
    Coordinator.configure t.coord
    >>= fun () ->
    Coordinator.reset t.coord
    >>= fun () ->
    Coordinator.send_edb t.coord (edb_text t a)
    >>= fun () ->
    Coordinator.send_program t.coord a.Plan.text
    >>= fun () ->
    let batches, seeded = seed_batches t a in
    let rec ship shard =
      if shard >= Array.length batches then Ok ()
      else if Buffer.length batches.(shard) = 0 then ship (shard + 1)
      else
        Coordinator.send_delta t.coord ~shard (Buffer.contents batches.(shard))
        >>= fun () -> ship (shard + 1)
    in
    ship 0
    >>= fun () ->
    Coordinator.run_fixpoint ~seeded t.coord
    >>= fun stats -> Ok (stats, seeded)
  with
  | exception Delta_codec.Unencodable m ->
    (* a value the codec cannot round-trip must not reach a worker:
       fail the sync; the caller's query surfaces the error and the
       cluster stays dirty *)
    Error (Protocol.Cluster, m)
  | Error e -> Error e
  | Ok (stats, seeded) ->
    Coral_obs.Obs.Counter.incr t.c_fixpoints;
    Coral_obs.Query_log.Events.log ~kind:"dist_fixpoint"
      [ "shards", Coral_obs.Json.Int (Coordinator.shards t.coord);
        "rounds", Coral_obs.Json.Int stats.Coordinator.rounds;
        "seeded_tuples", Coral_obs.Json.Int seeded;
        "new_tuples", Coral_obs.Json.Int stats.Coordinator.new_tuples;
        "shipped_tuples", Coral_obs.Json.Int stats.Coordinator.shipped_tuples;
        "shipped_bytes", Coral_obs.Json.Int stats.Coordinator.shipped_bytes;
        "wall_ms", Coral_obs.Json.Int (int_of_float (stats.Coordinator.wall_s *. 1000.));
        "skew", Coral_obs.Json.Float stats.Coordinator.skew_max;
        "straggler_rounds", Coral_obs.Json.Int stats.Coordinator.stragglers
      ];
    t.last_run <- Some stats;
    t.dirty <- false;
    Ok ()

(* Re-read the verdict under [cl_lock] and, if the cluster is dirty,
   reprovision with the analysis read THERE — not one a caller read
   before taking the lock.  A concurrent consult can flip the verdict
   between a caller's unlocked routing check and this point; returning
   the locked-in analysis (or [`Local]) makes that race harmless
   instead of an [assert false]. *)
let ensure_synced t =
  Mutex.lock t.cl_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.cl_lock)
    (fun () ->
      match t.verdict with
      | Plan.Local _ -> `Local
      | Plan.Distributable a -> (
        if not t.dirty then `Synced a
        else
          match resync t a with
          | Ok () -> `Synced a
          | Error e -> `Error e))

let mark_dirty t =
  Mutex.lock t.cl_lock;
  t.dirty <- true;
  t.verdict <- Plan.analyse_engine (Coral.engine (Session.db t.sstore));
  Mutex.unlock t.cl_lock

(* ------------------------------------------------------------------ *)
(* Query routing                                                       *)
(* ------------------------------------------------------------------ *)

(* A query is fanned out when the cluster holds its derived data and
   the merge is provably disjoint: exactly one positive literal over a
   partitioned predicate (its instantiation in any answer row has a
   unique owner shard), none negated, and no update builtin anywhere
   in the query — a fanned-out assert/retract would mutate the
   workers' replicas instead of the router's database.  Everything
   else — pure-EDB queries, multi-IDB joins, negation over IDB,
   mutating queries — evaluates on the router's own replica. *)
let distributable_query (a : Plan.analysis) text =
  match Coral.Parser.query text with
  | Error _ -> None  (* let the local session produce the parse error *)
  | Ok lits ->
    let is_idb (atom : Coral.Ast.atom) =
      List.mem (Coral.Symbol.name atom.Coral.Ast.pred, Array.length atom.Coral.Ast.args) a.Plan.idb
    in
    let mutates (atom : Coral.Ast.atom) =
      let n = Coral.Symbol.name atom.Coral.Ast.pred in
      (n = "assert" || n = "retract") && Array.length atom.Coral.Ast.args = 1
    in
    let pos_idb =
      List.filter (function Coral.Ast.Pos at -> is_idb at | _ -> false) lits
    in
    let neg_idb =
      List.exists (function Coral.Ast.Neg at -> is_idb at | _ -> false) lits
    in
    let mutating =
      List.exists (function Coral.Ast.Pos at -> mutates at | _ -> false) lits
    in
    (match pos_idb, neg_idb, mutating with
    | [ _ ], false, false -> Some ()
    | _ -> None)

(* Strip a worker reply line back into payload form. *)
let payload_of_line line =
  if String.starts_with ~prefix:"ans " line then
    Some (Protocol.Ans (String.sub line 4 (String.length line - 4)))
  else if String.starts_with ~prefix:"txt " line then
    Some (Protocol.Txt (String.sub line 4 (String.length line - 4)))
  else None

(* One worker's share of a fanned-out query, on its own connection
   (the coordinator's control connections stay untouched, so an
   abandoned query thread can never poison a barrier). *)
let shard_query addr ~timeout_ms text =
  let client = Shard_client.create ~attempts:2 ~backoff_ms:20 addr in
  Fun.protect
    ~finally:(fun () -> Shard_client.disconnect client)
    (fun () ->
      if timeout_ms > 0 then
        ignore (Shard_client.request client (Printf.sprintf "timeout %d" timeout_ms));
      let lines, status = Shard_client.request client ("query " ^ text) in
      match Shard_client.status_ok status with
      | Some detail ->
        Ok (Protocol.ok ~detail (List.filter_map payload_of_line lines))
      | None -> (
        match Shard_client.status_err status with
        | Some (code, msg) ->
          let code = Option.value (Protocol.code_of_string code) ~default:Protocol.Cluster in
          Error (code, Printf.sprintf "%s: %s" addr msg)
        | None -> Error (Protocol.Proto, "unparseable reply from " ^ addr)))

let launch_fanout ~timeout_ms addrs text =
  let n = List.length addrs in
  let slots = Array.make n None in
  let threads =
    List.mapi
      (fun i addr ->
        Thread.create
          (fun () ->
            let r =
              try shard_query addr ~timeout_ms text
              with Shard_client.Down m -> Error (Protocol.Unavail, m)
            in
            slots.(i) <- Some r)
          ())
      addrs
  in
  { slots; threads }

(* Evaluate on the router's own replica — and notice when the query
   mutated it.  The assert/retract builtins ride ordinary queries (the
   session routes them to the write lane), and any committed mutation
   publishes a new snapshot epoch; an epoch bump across the call means
   the workers' materialized state no longer reflects the database, so
   the cluster goes dirty exactly like after a consult.  A concurrent
   session's mutation can bump the epoch in the same window and cause
   a spurious re-dirty — harmless; that mutation dirties the cluster
   itself anyway. *)
let local_query t session text =
  Coral_obs.Obs.Counter.incr t.c_local;
  let before = Session.snapshot_epoch t.sstore in
  let r = Session.handle session (Protocol.Query text) in
  if Session.snapshot_epoch t.sstore <> before then mark_dirty t;
  r

let fan_out t session text =
      Coral_obs.Obs.Counter.incr t.c_dist;
      (* The connection thread's trace context, captured HERE: the
         fan-out threads below have none, so the id travels to each
         worker inside the command line instead (a trailing [tid=]
         token the worker's serving layer re-installs). *)
      let tid = Obs.Trace.current () in
      (match tid with
      | Some id ->
        Mutex.lock t.cl_lock;
        t.last_tid <- Some id;
        Mutex.unlock t.cl_lock
      | None -> ());
      let wire_text = match tid with Some id -> text ^ " tid=" ^ id | None -> text in
      let timeout_ms = Session.deadline_ms session in
      let entry =
        Coral_obs.Query_log.register ~session:(Session.sid session)
          ~deadline_ms:timeout_ms ~kind:"dist" text
      in
      Fun.protect ~finally:(fun () -> Coral_obs.Query_log.unregister entry)
      @@ fun () ->
      let t0 = Unix.gettimeofday () in
      let t0_ns = Obs.now_ns () in
      let fo = launch_fanout ~timeout_ms (Coordinator.addrs t.coord) wire_text in
      (* Poll rather than join: kill (and the local deadline) must be
         able to abandon threads stuck on a wedged worker.  Abandoned
         threads own their connections and close them on exit. *)
      let rec wait () =
        if Array.for_all Option.is_some fo.slots then `Done
        else if Coral_obs.Query_log.killed entry then `Killed
        else if
          timeout_ms > 0 && (Unix.gettimeofday () -. t0) *. 1000. > float_of_int (timeout_ms + 200)
        then `Timeout
        else begin
          Thread.delay 0.02;
          wait ()
        end
      in
      (match wait () with
      | `Killed -> Protocol.err Protocol.Killed "query killed by operator request"
      | `Timeout ->
        Protocol.err Protocol.Timeout
          (Printf.sprintf "deadline of %dms exceeded; fan-out abandoned" timeout_ms)
      | `Done ->
        List.iter Thread.join fo.threads;
        let results = Array.map Option.get fo.slots in
        (match
           Array.fold_left
             (fun acc r -> match acc, r with None, Error e -> Some e | _ -> acc)
             None results
         with
        | Some (code, msg) ->
          (* a vanished worker leaves the cluster suspect: resync
             before the next distributed query *)
          if code = Protocol.Unavail then mark_dirty t;
          Protocol.err code msg
        | None ->
          let payload =
            Array.to_list results
            |> List.concat_map (function
                 | Ok (r : Protocol.response) -> r.Protocol.payload
                 | Error _ -> [])
          in
          let rows =
            List.length (List.filter (function Protocol.Ans _ -> true | _ -> false) payload)
          in
          if Obs.enabled () then
            Obs.Span.record "router.fanout" t0_ns
              (Obs.now_ns () - t0_ns)
              [ "shards", string_of_int (Coordinator.shards t.coord);
                "rows", string_of_int rows ];
          Protocol.ok
            ~detail:
              (Printf.sprintf "%d answer%s shards=%d%s" rows
                 (if rows = 1 then "" else "s")
                 (Coordinator.shards t.coord)
                 (match tid with Some id -> " tid=" ^ id | None -> ""))
            payload))

let do_dist_query t session text =
  match ensure_synced t with
  | `Error (code, msg) -> Protocol.err code ("cluster sync failed: " ^ msg)
  | `Local ->
    (* the verdict flipped under a concurrent consult; the replica is
       the correct target now *)
    local_query t session text
  | `Synced a -> (
    (* re-check the query against the analysis the workers actually
       hold, not the one the unlocked routing peek saw *)
    match distributable_query a text with
    | Some () -> fan_out t session text
    | None -> local_query t session text)

let handle_query t session text =
  (* an unlocked peek, only to route: do_dist_query re-reads the
     verdict under cl_lock before touching the cluster *)
  match t.verdict with
  | Plan.Distributable a when Coordinator.shards t.coord > 0 -> (
    match distributable_query a text with
    | Some () -> do_dist_query t session text
    | None -> local_query t session text)
  | _ -> local_query t session text

(* ------------------------------------------------------------------ *)
(* Request dispatch                                                    *)
(* ------------------------------------------------------------------ *)

let router_stats t =
  Mutex.lock t.cl_lock;
  let dirty = t.dirty and verdict = t.verdict and last = t.last_run in
  Mutex.unlock t.cl_lock;
  let lines =
    [ Printf.sprintf "router.shards=%d" (Coordinator.shards t.coord);
      Printf.sprintf "router.state=%s" (if dirty then "dirty" else "clean");
      Printf.sprintf "router.distributable=%s"
        (match verdict with
        | Plan.Distributable a -> Printf.sprintf "yes (%d idb)" (List.length a.Plan.idb)
        | Plan.Local reason -> "no: " ^ reason);
      Printf.sprintf "router.queries.dist=%d" (Coral_obs.Obs.Counter.value t.c_dist);
      Printf.sprintf "router.queries.local=%d" (Coral_obs.Obs.Counter.value t.c_local);
      Printf.sprintf "router.fixpoint.runs=%d" (Coral_obs.Obs.Counter.value t.c_fixpoints)
    ]
    @
    match last with
    | None -> []
    | Some s ->
      [ Printf.sprintf "router.fixpoint.rounds=%d" s.Coordinator.rounds;
        Printf.sprintf "router.fixpoint.new_tuples=%d" s.Coordinator.new_tuples;
        Printf.sprintf "router.fixpoint.shipped_tuples=%d" s.Coordinator.shipped_tuples;
        Printf.sprintf "router.fixpoint.shipped_bytes=%d" s.Coordinator.shipped_bytes;
        Printf.sprintf "router.fixpoint.wall_ms=%.1f" (s.Coordinator.wall_s *. 1000.);
        Printf.sprintf "router.fixpoint.skew=%.2f" s.Coordinator.skew_max;
        Printf.sprintf "router.fixpoint.straggler_rounds=%d" s.Coordinator.stragglers
      ]
  in
  List.map (fun l -> Protocol.Txt l) lines

(* ------------------------------------------------------------------ *)
(* Cluster observability: federation, dstat, trace stitching           *)
(* ------------------------------------------------------------------ *)

(* Rewrite one line of a worker's Prometheus exposition into the
   federated namespace: [coral_X ...] becomes
   [coral_shard_X{shard="N",...} ...].  [typed] remembers which
   federated metric names have already emitted a [# TYPE] header —
   the exposition format allows it at most once per name, and every
   shard's scrape carries the same headers. *)
let relabel_metric_line ~typed ~shard line =
  let shard_label = Printf.sprintf "shard=\"%d\"" shard in
  if String.starts_with ~prefix:"# TYPE coral_" line then begin
    let rest = String.sub line 7 (String.length line - 7) in
    match String.index_opt rest ' ' with
    | None -> None
    | Some i ->
      let name = "coral_shard_" ^ String.sub rest 6 (i - 6) in
      let kind = String.sub rest (i + 1) (String.length rest - i - 1) in
      if Hashtbl.mem typed name then None
      else begin
        Hashtbl.replace typed name ();
        Some (Printf.sprintf "# TYPE %s %s" name kind)
      end
  end
  else if String.starts_with ~prefix:"coral_" line then begin
    let n = String.length line in
    let rec name_end i =
      if i >= n then n else match line.[i] with '{' | ' ' -> i | _ -> name_end (i + 1)
    in
    let cut = name_end 0 in
    let name = "coral_shard_" ^ String.sub line 6 (cut - 6) in
    let rest = String.sub line cut (n - cut) in
    if String.length rest > 0 && rest.[0] = '{' then
      Some (name ^ "{" ^ shard_label ^ "," ^ String.sub rest 1 (String.length rest - 1))
    else Some (name ^ "{" ^ shard_label ^ "}" ^ rest)
  end
  else None  (* # HELP, blanks, non-coral series *)

(* The router's federated scrape body: its own replica's metrics, the
   cluster roll-ups, then every worker's metrics relabeled under
   [coral_shard_*{shard="N"}] plus a per-shard [coral_shard_up] gauge.
   Scrapes ride one-shot connections (Shard_client.fetch), never the
   coordinator's pooled control clients. *)
let metrics_text t =
  let buf = Buffer.create 8192 in
  Buffer.add_string buf (Session.metrics_text t.sstore);
  Mutex.lock t.cl_lock;
  let dirty = t.dirty and last = t.last_run in
  Mutex.unlock t.cl_lock;
  Obs.prometheus_sample buf ~kind:"gauge" "router.shards" (Coordinator.shards t.coord);
  Obs.prometheus_sample buf ~kind:"gauge" "router.dirty" (if dirty then 1 else 0);
  (match last with
  | None -> ()
  | Some s ->
    Obs.prometheus_sample buf ~kind:"gauge" "router.fixpoint.rounds" s.Coordinator.rounds;
    Obs.prometheus_sample buf ~kind:"gauge" "router.fixpoint.new_tuples"
      s.Coordinator.new_tuples;
    Obs.prometheus_sample buf ~kind:"gauge" "router.fixpoint.shipped_tuples"
      s.Coordinator.shipped_tuples;
    Obs.prometheus_sample_f buf ~kind:"gauge" "router.fixpoint.wall_seconds"
      s.Coordinator.wall_s;
    Obs.prometheus_sample_f buf ~kind:"gauge" "dist.skew_ratio" s.Coordinator.skew_max;
    Obs.prometheus_sample buf ~kind:"gauge" "dist.straggler_rounds"
      s.Coordinator.stragglers);
  let typed = Hashtbl.create 64 in
  List.iteri
    (fun i addr ->
      let scraped =
        match Shard_client.fetch addr "metrics" with
        | Error _ -> None
        | Ok (lines, status) ->
          if Shard_client.status_ok status = None then None else Some lines
      in
      Obs.prometheus_sample_labeled buf
        ~typ:(not (Hashtbl.mem typed "coral_shard_up"))
        ~kind:"gauge"
        ~labels:[ "shard", string_of_int i; "addr", addr ]
        "shard.up"
        (if scraped = None then 0. else 1.);
      Hashtbl.replace typed "coral_shard_up" ();
      match scraped with
      | None -> ()
      | Some lines ->
        List.iter
          (fun line ->
            if String.starts_with ~prefix:"txt " line then
              let raw = String.sub line 4 (String.length line - 4) in
              match relabel_metric_line ~typed ~shard:i raw with
              | Some l ->
                Buffer.add_string buf l;
                Buffer.add_char buf '\n'
              | None -> ())
          lines)
    (Coordinator.addrs t.coord);
  Buffer.contents buf

let do_metrics t =
  let lines =
    metrics_text t |> String.split_on_char '\n' |> List.filter (fun l -> l <> "")
  in
  Protocol.ok (List.map (fun l -> Protocol.Txt l) lines)

(* Per-round fixpoint instrumentation, as an operator table. *)
let do_dstat t =
  Mutex.lock t.cl_lock;
  let last = t.last_run in
  Mutex.unlock t.cl_lock;
  match last with
  | None ->
    Protocol.err Protocol.Cluster
      "dstat: no distributed fixpoint has run yet (consult a distributable program and query it)"
  | Some s ->
    let lines =
      List.concat_map
        (fun (r : Coordinator.round_stat) ->
          Printf.sprintf "round=%d wall_ms=%.2f step_max_ms=%.2f skew=%.2f straggler=%s"
            r.Coordinator.r_round
            (r.Coordinator.r_wall_s *. 1000.)
            (r.Coordinator.r_step_max_s *. 1000.)
            r.Coordinator.r_skew
            (match r.Coordinator.r_straggler with
            | None -> "-"
            | Some sh -> string_of_int sh)
          :: List.map
               (fun (sr : Coordinator.shard_round) ->
                 Printf.sprintf
                   "  shard=%d step_ms=%.2f derived=%d shipped=%d received=%d new=%d"
                   sr.Coordinator.sr_shard
                   (sr.Coordinator.sr_step_s *. 1000.)
                   sr.Coordinator.sr_derived sr.Coordinator.sr_shipped
                   sr.Coordinator.sr_received sr.Coordinator.sr_new)
               r.Coordinator.r_shards)
        s.Coordinator.round_stats
    in
    Protocol.ok
      ~detail:
        (Printf.sprintf "rounds=%d skew_max=%.2f straggler_rounds=%d wall_ms=%.1f"
           s.Coordinator.rounds s.Coordinator.skew_max s.Coordinator.stragglers
           (s.Coordinator.wall_s *. 1000.))
      (List.map (fun l -> Protocol.Txt l) lines)

(* Stitch one trace: the router's own spans plus a [spans <tid>] pull
   from every worker, each as its own pid lane of one Chrome
   trace_event JSON.  A worker that cannot be reached simply
   contributes an empty lane — a partial trace beats none. *)
let do_trace t tid_arg =
  let tid =
    if tid_arg <> "last" then Some tid_arg
    else begin
      Mutex.lock t.cl_lock;
      let v = t.last_tid in
      Mutex.unlock t.cl_lock;
      v
    end
  in
  match tid with
  | None ->
    Protocol.err Protocol.Cluster
      "trace last: no distributed query has been traced yet (is observability on? try 'obs on')"
  | Some tid ->
    let shard_lanes =
      List.mapi
        (fun i addr ->
          let spans =
            match Shard_client.fetch addr ("spans " ^ tid) with
            | Error _ -> []
            | Ok (lines, status) ->
              if Shard_client.status_ok status = None then []
              else
                List.filter_map
                  (fun line ->
                    if String.starts_with ~prefix:"txt " line then
                      match
                        Obs.Span.of_json (String.sub line 4 (String.length line - 4))
                      with
                      | Ok s -> Some s
                      | Error _ -> None
                    else None)
                  lines
          in
          Printf.sprintf "shard%d %s" i addr, spans)
        (Coordinator.addrs t.coord)
    in
    let lanes = ("router", Obs.Span.matching tid) :: shard_lanes in
    let total = List.fold_left (fun n (_, spans) -> n + List.length spans) 0 lanes in
    if total = 0 then
      Protocol.err Protocol.Eval
        (Printf.sprintf "trace %s: no spans recorded (is observability on? try 'obs on')"
           tid)
    else
      let payload =
        Obs.Span.to_chrome_json_lanes lanes
        |> String.split_on_char '\n'
        |> List.filter (fun l -> l <> "")
        |> List.map (fun l -> Protocol.Txt l)
      in
      Protocol.ok
        ~detail:
          (Printf.sprintf "%d span%s tid=%s lanes=%d" total
             (if total = 1 then "" else "s")
             tid (List.length lanes))
        payload

let handle t session (req : Protocol.request) =
  match req with
  | Protocol.Query text -> handle_query t session text
  | Protocol.Consult _ | Protocol.Insert _ | Protocol.Retract _ ->
    let r = Session.handle session req in
    (match r.Protocol.status with Ok _ -> mark_dirty t | Error _ -> ());
    r
  | Protocol.Stats ->
    let r = Session.handle session req in
    (match r.Protocol.status with
    | Ok _ -> { r with Protocol.payload = r.Protocol.payload @ router_stats t }
    | Error _ -> r)
  | Protocol.Metrics -> do_metrics t
  | Protocol.Dstat -> do_dstat t
  | Protocol.Trace tid -> do_trace t tid
  | _ -> Session.handle session req

(* ------------------------------------------------------------------ *)
(* Accept loop (mirrors Server's; same framing, same byte accounting)  *)
(* ------------------------------------------------------------------ *)

let serve_connection ?reserved t client =
  let store = t.sstore in
  let ic = Unix.in_channel_of_descr client in
  let oc = Unix.out_channel_of_descr client in
  let session = Session.create ?reserved store in
  let write r = Session.note_bytes_written store (Protocol.write_response oc r) in
  let rec loop () =
    match Protocol.read_line_capped ic with
    | None -> ()
    | Some line when String.trim line = "" ->
      Session.note_bytes_read store (String.length line + 1);
      loop ()
    | Some line -> begin
      Session.note_bytes_read store (String.length line + 1);
      (* The router is the trace origin: adopt a client-supplied
         [tid=], otherwise mint a fresh id (when tracing is on) so the
         whole fan-out — local spans, worker commands, events — shares
         one trace id. *)
      let tid =
        match snd (Protocol.split_tid line) with
        | Some _ as it -> it
        | None -> if Obs.enabled () then Some (Obs.Trace.fresh ()) else None
      in
      let handle_req req = Obs.Trace.with_id tid (fun () -> handle t session req) in
      let with_payload kind n build =
        if n > Protocol.max_payload_bytes then
          write
            (Protocol.err Protocol.Too_big
               (Printf.sprintf "%s payload of %d bytes exceeds the %d byte limit" kind n
                  Protocol.max_payload_bytes))
        else begin
          match really_input_string ic n with
          | text ->
            Session.note_bytes_read store n;
            write (handle_req (build text));
            loop ()
          | exception End_of_file -> ()
        end
      in
      match Protocol.parse_request line with
      | `Bad msg ->
        write (Protocol.err Protocol.Proto msg);
        loop ()
      | `Consult_payload n -> with_payload "consult#" n (fun txt -> Protocol.Consult txt)
      | `Dprog_payload n -> with_payload "dprog#" n (fun txt -> Protocol.Dprog txt)
      | `Delta_payload n -> with_payload "delta#" n (fun txt -> Protocol.Delta txt)
      | `Req Protocol.Quit -> write (handle_req Protocol.Quit)
      | `Req req ->
        write (handle_req req);
        loop ()
    end
  in
  (try loop () with
  | Protocol.Line_too_long ->
    (try
       write
         (Protocol.err Protocol.Too_big
            (Printf.sprintf "request line exceeds %d bytes" Protocol.max_line_bytes))
     with Sys_error _ | Unix.Unix_error _ -> ())
  | Sys_error _ | End_of_file -> ()
  | Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> ()
  | Unix.Unix_error _ -> ());
  Session.close session;
  try Unix.close client with Unix.Unix_error _ -> ()

let accept_loop t =
  while not t.closed do
    match Unix.accept t.fd with
    | client, _addr -> begin
      let adm = Session.admission t.sstore in
      let cap = (Admission.config adm).Admission.max_sessions in
      if not (Session.try_reserve t.sstore ~cap) then begin
        Admission.note_shed adm;
        let retry = (Admission.config adm).Admission.retry_after_ms in
        (try
           let oc = Unix.out_channel_of_descr client in
           ignore
             (Protocol.write_response oc
                (Protocol.busy ~retry_after_ms:retry
                   (Printf.sprintf "router at capacity (%d connections)" cap)))
         with Sys_error _ | Unix.Unix_error _ | Out_of_memory -> ());
        try Unix.close client with Unix.Unix_error _ -> ()
      end
      else begin
        match
          Thread.create
            (fun () ->
              try serve_connection ~reserved:true t client
              with _ -> ( try Unix.close client with Unix.Unix_error _ -> ()))
            ()
        with
        | (_ : Thread.t) -> ()
        | exception _ ->
          Session.unreserve t.sstore;
          (try Unix.close client with Unix.Unix_error _ -> ())
      end
    end
    | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL), _, _) -> t.closed <- true
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error (Unix.ECONNABORTED, _, _) -> ()
    | exception Unix.Unix_error ((Unix.EMFILE | Unix.ENFILE), _, _) ->
      if not t.closed then Thread.delay 0.05
    | exception Unix.Unix_error (_, _, _) | exception Sys_error _ ->
      if not t.closed then Thread.delay 0.01
  done

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)
(* ------------------------------------------------------------------ *)

type listen =
  [ `Tcp of string * int
  | `Unix of string ]

let start ?(consult = []) ?limits ?straggler_factor ~listen ~shard_addrs ~key db =
  ignore_sigpipe ();
  List.iter (fun file -> Coral.consult_file db file) consult;
  let fd, bound_port =
    match listen with
    | `Tcp (host, port) ->
      let addr =
        match Unix.getaddrinfo host (string_of_int port) [ Unix.AI_SOCKTYPE Unix.SOCK_STREAM ] with
        | { Unix.ai_addr; _ } :: _ -> ai_addr
        | [] -> Unix.ADDR_INET (Unix.inet_addr_loopback, port)
      in
      let fd = Unix.socket (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      Unix.bind fd addr;
      Unix.listen fd 64;
      let bound =
        match Unix.getsockname fd with
        | Unix.ADDR_INET (_, p) -> p
        | _ -> port
      in
      fd, bound
    | `Unix path ->
      if Sys.file_exists path then Sys.remove path;
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX path);
      Unix.listen fd 64;
      fd, 0
  in
  let t =
    { fd;
      bound_port;
      sock_path = (match listen with `Unix path -> Some path | `Tcp _ -> None);
      sstore = Session.make_store ?limits db;
      coord = Coordinator.create ?straggler_factor ~addrs:shard_addrs ~key ();
      cl_lock = Mutex.create ();
      dirty = true;
      verdict = Plan.analyse_engine (Coral.engine db);
      last_run = None;
      last_tid = None;
      closed = false;
      accept_thread = None;
      c_dist = Coral_obs.Obs.counter "router.queries.dist_total";
      c_local = Coral_obs.Obs.counter "router.queries.local_total";
      c_fixpoints = Coral_obs.Obs.counter "router.fixpoint.runs_total";
      c_resyncs = Coral_obs.Obs.counter "router.resyncs_total"
    }
  in
  t.accept_thread <- Some (Thread.create (fun () -> accept_loop t) ());
  t

let port t = t.bound_port
let store t = t.sstore
let shards t = Coordinator.shards t.coord

let wait t =
  match t.accept_thread with
  | Some th -> Thread.join th
  | None -> ()

let shutdown t =
  if not t.closed then begin
    t.closed <- true;
    (try Unix.shutdown t.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
    (try Unix.close t.fd with Unix.Unix_error _ -> ());
    wait t;
    Coordinator.disconnect t.coord;
    match t.sock_path with
    | Some path -> ( try Sys.remove path with Sys_error _ -> ())
    | None -> ()
  end
