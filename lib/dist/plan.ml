(* Distributability analysis: which programs the sharded fixpoint can
   evaluate, and how each rule behaves.

   The supported class is "linear" programs over a replicated EDB:
   every base relation is replicated on all workers (and the router),
   every derived (IDB) relation is hash-partitioned on a key argument,
   and every rule has at most one IDB body literal.  Then a rule
   application joins one partitioned delta tuple against replicated
   relations, so it can run entirely on the shard owning that delta
   tuple, and only the derived head tuples need shipping — the shape
   of the paper's semi-naive rewriting with the delta occurrence
   pushed across a process boundary.

   Rules with no IDB body literal ([Init]) run on every shard against
   the replicated EDB; each shard keeps only the head tuples it owns
   and ships nothing (every peer derives its own partition of the same
   tuples), which avoids N duplicate derivations crossing the wire.

   Anything outside the class — non-linear recursion, negation or
   aggregation over derived predicates, module annotations that change
   evaluation — yields [Local]: the router falls back to single-node
   evaluation on its own full replica, which is always correct, just
   not scaled out. *)

open Coral

type rule_class =
  | Init  (* no IDB body literal: evaluate everywhere, keep owned heads *)
  | Linear of int  (* index of the one IDB body literal *)

type drule = { rule : Ast.rule; cls : rule_class }

type analysis = {
  idb : (string * int) list;  (* partitioned derived predicates *)
  drules : drule list;
  text : string;  (* the program as shipped to workers: one rule per line *)
}

type verdict =
  | Distributable of analysis
  | Local of string  (* why the router must evaluate on its own replica *)

let pred_of (a : Ast.atom) = Symbol.name a.Ast.pred, Array.length a.Ast.args

exception Not_distributable of string

let check_rule idb (r : Ast.rule) =
  let head_name = Symbol.name r.Ast.head.Ast.hpred in
  if String.contains head_name '@' then
    raise (Not_distributable (Printf.sprintf "reserved head predicate %s" head_name));
  if not (Ast.head_is_plain r.Ast.head) then
    raise
      (Not_distributable
         (Printf.sprintf "aggregation in the head of %s" head_name));
  (* range restriction: every head variable must be bound by the body,
     or the worker cannot rebuild head tuples from query rows *)
  let body_vars =
    List.concat_map (fun l -> List.concat_map Term.vars (Ast.literal_terms l)) r.Ast.body
  in
  List.iter
    (fun (v : Term.var) ->
      if not (List.exists (fun (bv : Term.var) -> bv.Term.vid = v.Term.vid) body_vars)
      then
        raise
          (Not_distributable
             (Printf.sprintf "unbound head variable %s in %s" v.Term.vname head_name)))
    (List.concat_map Term.vars (Ast.head_terms r.Ast.head));
  let idb_positions =
    List.mapi
      (fun i l ->
        match l with
        | Ast.Pos a ->
          if String.contains (Symbol.name a.Ast.pred) '@' then
            raise
              (Not_distributable
                 (Printf.sprintf "reserved body predicate %s" (Symbol.name a.Ast.pred)));
          if List.mem (pred_of a) idb then Some i else None
        | Ast.Neg a ->
          if List.mem (pred_of a) idb then
            raise
              (Not_distributable
                 (Printf.sprintf "negation over derived predicate %s"
                    (Symbol.name a.Ast.pred)))
          else None
        | Ast.Cmp _ | Ast.Is _ -> None)
      r.Ast.body
    |> List.filter_map Fun.id
  in
  match idb_positions with
  | [] -> { rule = r; cls = Init }
  | [ i ] -> { rule = r; cls = Linear i }
  | _ ->
    raise
      (Not_distributable
         (Printf.sprintf "non-linear rule for %s (%d derived body literals)" head_name
            (List.length idb_positions)))

let check_module (m : Ast.module_) =
  if m.Ast.annotations <> [] then
    raise
      (Not_distributable
         (Printf.sprintf "module %s uses evaluation annotations" m.Ast.mname))

let analyse (modules : Ast.module_ list) (clauses : Ast.rule list) =
  try
    List.iter check_module modules;
    let rules = List.concat_map (fun (m : Ast.module_) -> m.Ast.rules) modules @ clauses in
    let idb =
      List.sort_uniq compare
        (List.map (fun (r : Ast.rule) -> pred_of (Ast.atom_of_head r.Ast.head)) rules)
    in
    (* a predicate defined in two modules would merge two separately
       scoped definitions into one global fixpoint *)
    List.iter
      (fun (name, arity) ->
        let defined_in =
          List.filter
            (fun (m : Ast.module_) ->
              List.exists
                (fun (r : Ast.rule) -> pred_of (Ast.atom_of_head r.Ast.head) = (name, arity))
                m.Ast.rules)
            modules
        in
        if List.length defined_in > 1 then
          raise
            (Not_distributable
               (Printf.sprintf "%s/%d is defined in %d modules" name arity
                  (List.length defined_in))))
      idb;
    let drules = List.map (check_rule idb) rules in
    let text =
      String.concat "" (List.map (fun d -> Pretty.rule_to_string d.rule ^ "\n") drules)
    in
    Distributable { idb; drules; text }
  with Not_distributable reason -> Local reason

let analyse_engine eng =
  analyse (Engine.module_defs eng) (Engine.interactive_rules eng)

let analyse_text text =
  match Parser.program text with
  | Error e -> Local (Format.asprintf "%a" Parser.pp_error e)
  | Ok items ->
    let modules =
      List.filter_map (function Ast.Module_item m -> Some m | _ -> None) items
    in
    if List.exists (function Ast.Update _ -> true | _ -> false) items then
      (* insert/retract directives mutate the store mid-program; they
         must run on the replica (and dirty the cluster), never ship as
         part of a distributed rule program *)
      Local "program contains insert/retract directives"
    else
      let clauses =
        (* a module fact (path(40, 41). among recursive path rules)
           pretty-prints as a bare fact line, which re-parses as a
           top-level [Fact] item — keep it as an empty-body rule or the
           worker's program silently loses the seed *)
        List.filter_map
          (function
            | Ast.Clause_item r -> Some r
            | Ast.Fact a -> Some { Ast.head = Ast.head_of_atom a; Ast.body = [] }
            | _ -> None)
          items
      in
      analyse modules clauses
