(* The round-synchronous fixpoint coordinator.

   Each global round is a two-phase barrier over every worker:

     barrier step <r>     one local semi-naive round; derived tuples
                          for other shards are shipped peer-to-peer
                          and acknowledged before the worker replies
     barrier promote <r>  absorb buffered deltas into full + @delta

   A worker replies to [step] only after its outbound deltas are
   acked, so once every [step] reply is in, no delta is in flight and
   the coordinator may run [promote].  Global quiescence is then
   detected purely from the replies: the fixpoint is reached when a
   round promotes no new tuple anywhere and shipped nothing.  As a
   corruption tripwire, the tuples shipped in a round must equal the
   tuples received (receivers count pre-dedup): an imbalance means a
   lost or duplicated batch, and the run aborts rather than risk a
   silently incomplete fixpoint. *)

open Coral_server
module Obs = Coral_obs.Obs
module Query_log = Coral_obs.Query_log
module Json = Coral_obs.Json

type t = {
  clients : Shard_client.t array;
  addrs : string array;
  key : int;
  straggler_factor : float;
      (* a shard is flagged when its step time exceeds this multiple
         of the round's median (plus an absolute floor, so microsecond
         jitter on a trivial round never flags anyone) *)
}

(* Per-shard slice of one global round, parsed out of that shard's
   step/promote replies plus its observed barrier wall times. *)
type shard_round = {
  sr_shard : int;
  sr_step_s : float;  (* barrier step wall: local evaluation + delta shipping *)
  sr_derived : int;
  sr_shipped : int;
  sr_received : int;
  sr_new : int;
}

type round_stat = {
  r_round : int;
  r_wall_s : float;  (* the whole round: slowest step + slowest promote *)
  r_step_max_s : float;
  r_skew : float;  (* max/mean of per-shard step times; 1.0 = balanced *)
  r_straggler : int option;  (* flagged shard index, if any *)
  r_shards : shard_round list;
}

type run_stats = {
  rounds : int;
  derived : int;  (* candidate-new tuples derived across all shards *)
  shipped_tuples : int;
  shipped_bytes : int;
  new_tuples : int;  (* tuples that survived promotion (post-dedup) *)
  wall_s : float;
  skew_max : float;  (* worst per-round skew ratio seen in this run *)
  stragglers : int;  (* rounds in which some shard was flagged *)
  round_stats : round_stat list;  (* oldest first *)
}

let zero_stats = {
  rounds = 0; derived = 0; shipped_tuples = 0; shipped_bytes = 0;
  new_tuples = 0; wall_s = 0.; skew_max = 0.; stragglers = 0; round_stats = []
}

let default_straggler_factor = 3.0

(* Below this absolute excess over the median a shard is never flagged:
   scheduling noise on an empty round is not a straggler. *)
let straggler_floor_s = 0.002

let create ?(straggler_factor = default_straggler_factor) ~addrs ~key () =
  let addrs = Array.of_list addrs in
  { clients = Array.map (fun a -> Shard_client.create a) addrs;
    addrs;
    key;
    straggler_factor = (if straggler_factor < 1.0 then 1.0 else straggler_factor)
  }

let shards t = Array.length t.clients
let addrs t = Array.to_list t.addrs
let partition t = Partition.create ~shards:(Array.length t.clients) ~key:t.key

let disconnect t = Array.iter Shard_client.disconnect t.clients

(* Run [f] against every worker concurrently and join.  Concurrency is
   required, not a luxury: worker A's step blocks until worker B acks
   A's delta batch, so stepping the workers one at a time would
   serialize rounds on cross-shard traffic (it would still terminate —
   deltas are absorbed on B's own connection threads — but every
   round would pay shard-count round trips). *)
let broadcast t f =
  let results = Array.map (fun _ -> Error (Protocol.Unavail, "no reply")) t.clients in
  let run i =
    results.(i) <-
      (try f i t.clients.(i)
       with Shard_client.Down m -> Error (Protocol.Unavail, m))
  in
  let threads = Array.mapi (fun i _ -> Thread.create run i) t.clients in
  Array.iter Thread.join threads;
  results

(* [broadcast] that also reports each worker's observed wall time —
   the raw material for skew and straggler detection.  Timed from this
   side of the socket, so it includes the worker's barrier wait. *)
let broadcast_timed t f =
  let results = Array.map (fun _ -> Error (Protocol.Unavail, "no reply")) t.clients in
  let times = Array.map (fun _ -> 0.) t.clients in
  let run i =
    let t0 = Unix.gettimeofday () in
    results.(i) <-
      (try f i t.clients.(i)
       with Shard_client.Down m -> Error (Protocol.Unavail, m));
    times.(i) <- Unix.gettimeofday () -. t0
  in
  let threads = Array.mapi (fun i _ -> Thread.create run i) t.clients in
  Array.iter Thread.join threads;
  results, times

(* Append the calling thread's trace context to a control-plane
   command, so worker-side spans and events carry the router's trace
   id.  Must be computed on the caller — [broadcast]'s worker threads
   have no trace context of their own. *)
let tag tid cmd = match tid with Some id -> cmd ^ " tid=" ^ id | None -> cmd

let first_error results =
  Array.fold_left
    (fun acc r -> match acc, r with None, Error e -> Some e | _ -> acc)
    None results

(* One command expecting an [ok] reply; the parsed kv detail on
   success, the propagated (code, message) on [err]. *)
let expect_ok client ?payload cmd =
  let _, status = Shard_client.request client ?payload cmd in
  match Shard_client.status_ok status with
  | Some detail -> Ok (Shard_client.kv_pairs detail)
  | None -> (
    match Shard_client.status_err status with
    | Some (code, msg) ->
      let code =
        Option.value (Protocol.code_of_string code) ~default:Protocol.Cluster
      in
      Error (code, Printf.sprintf "%s: %s" (Shard_client.addr client) msg)
    | None -> Error (Protocol.Proto, "unparseable reply: " ^ status))

let all_ok results =
  match first_error results with
  | Some e -> Error e
  | None ->
    Ok
      (Array.to_list results
      |> List.map (function Ok kv -> kv | Error _ -> assert false))

(* ------------------------------------------------------------------ *)
(* Cluster (re)provisioning                                            *)
(* ------------------------------------------------------------------ *)

let configure t =
  let tid = Obs.Trace.current () in
  let peer_list = String.concat " " (Array.to_list t.addrs) in
  let n = Array.length t.clients in
  broadcast t (fun i client ->
      expect_ok client (tag tid (Printf.sprintf "shard %d %d %d %s" i n t.key peer_list)))
  |> all_ok
  |> Result.map (fun _ -> ())

let reset t =
  let tid = Obs.Trace.current () in
  broadcast t (fun _ c -> expect_ok c (tag tid "dreset")) |> all_ok |> Result.map ignore

let send_payload t cmd text =
  let tid = Obs.Trace.current () in
  let payload =
    if text = "" || text.[String.length text - 1] = '\n' then text else text ^ "\n"
  in
  broadcast t (fun _ c ->
      expect_ok c ~payload (tag tid (Printf.sprintf "%s %d" cmd (String.length payload))))
  |> all_ok
  |> Result.map ignore

let send_edb t text = send_payload t "consult#" text
let send_program t text = send_payload t "dprog#" text

(* Ship one shard a delta batch outside the barrier loop.  Used to
   seed partitioned predicates that also have consulted base facts:
   the batch sits in the worker's exchange buffer and is absorbed at
   the first promote, exactly like a peer delta.  The caller passes
   the total seeded count to [run_fixpoint] so round 1's
   shipped-equals-received tripwire can account for it. *)
let send_delta t ~shard text =
  if shard < 0 || shard >= Array.length t.clients then
    Error (Protocol.Cluster, Printf.sprintf "seed delta for nonexistent shard %d" shard)
  else begin
    let tid = Obs.Trace.current () in
    let payload =
      if text = "" || text.[String.length text - 1] = '\n' then text else text ^ "\n"
    in
    match
      expect_ok t.clients.(shard)
        ~payload
        (tag tid (Printf.sprintf "delta# %d" (String.length payload)))
    with
    | Ok _ -> Ok ()
    | Error e -> Error e
    | exception Shard_client.Down m -> Error (Protocol.Unavail, m)
  end

(* ------------------------------------------------------------------ *)
(* The fixpoint loop                                                   *)
(* ------------------------------------------------------------------ *)

let max_rounds = 100_000

let sum key kvs =
  List.fold_left (fun acc kv -> acc + Option.value (Shard_client.kv_int kv key) ~default:0) 0 kvs

let kv_of key kv = Option.value (Shard_client.kv_int kv key) ~default:0

(* Lower-middle median: with an even shard count the upper middle IS
   the max for n = 2, which could then never exceed itself times the
   factor — a two-shard cluster would be blind to its own straggler. *)
let median_of times =
  let s = Array.copy times in
  Array.sort compare s;
  if Array.length s = 0 then 0. else s.((Array.length s - 1) / 2)

(* Skew and straggler detection over one round's per-shard step times.
   The skew ratio is max/mean (1.0 = perfectly balanced); the slowest
   shard is flagged a straggler only when it exceeds [factor] times
   the median AND beats it by an absolute floor, so an idle cluster's
   scheduling jitter never raises the flag. *)
let analyze_round ~factor times =
  let n = Array.length times in
  if n = 0 then 0., 0., None
  else begin
    let max_i = ref 0 in
    Array.iteri (fun i v -> if v > times.(!max_i) then max_i := i) times;
    let maxv = times.(!max_i) in
    let mean = Array.fold_left ( +. ) 0. times /. float_of_int n in
    let skew = if mean > 0. then maxv /. mean else 1.0 in
    let med = median_of times in
    let straggler =
      if n > 1 && maxv > (med *. factor) && maxv -. med > straggler_floor_s then
        Some !max_i
      else None
    in
    maxv, skew, straggler
  end

let run_fixpoint ?(progress = fun ~round:_ ~new_tuples:_ ~shipped:_ -> ()) ?(seeded = 0) t =
  let t0 = Unix.gettimeofday () in
  (* captured once: [broadcast]'s worker threads have no trace context *)
  let tid = Obs.Trace.current () in
  let rec round r acc =
    if r > max_rounds then
      Error (Protocol.Cluster, Printf.sprintf "no fixpoint after %d rounds" max_rounds)
    else begin
      let round_t0 = Unix.gettimeofday () in
      let round_t0_ns = Obs.now_ns () in
      let step_results, step_times =
        broadcast_timed t (fun _ c -> expect_ok c (tag tid (Printf.sprintf "barrier step %d" r)))
      in
      match all_ok step_results with
      | Error e -> Error e
      | Ok step_kvs -> (
        let derived = sum "derived" step_kvs in
        let shipped = sum "shipped" step_kvs in
        let bytes = sum "bytes" step_kvs in
        match
          broadcast t (fun _ c -> expect_ok c (tag tid (Printf.sprintf "barrier promote %d" r)))
          |> all_ok
        with
        | Error e -> Error e
        | Ok prom_kvs ->
          let fresh = sum "new" prom_kvs in
          (* round 1 also drains the pre-shipped seed deltas *)
          let received = sum "received" prom_kvs - if r = 1 then seeded else 0 in
          if shipped <> received then
            Error
              ( Protocol.Cluster,
                Printf.sprintf
                  "delta accounting imbalance in round %d: %d shipped, %d received" r
                  shipped received )
          else begin
            progress ~round:r ~new_tuples:fresh ~shipped;
            (* per-(round, shard) slices + the round's skew analysis *)
            let r_wall_s = Unix.gettimeofday () -. round_t0 in
            let step_max, skew, straggler =
              analyze_round ~factor:t.straggler_factor step_times
            in
            let shard_rounds =
              List.mapi
                (fun i (step_kv, prom_kv) ->
                  { sr_shard = i;
                    sr_step_s = step_times.(i);
                    sr_derived = kv_of "derived" step_kv;
                    sr_shipped = kv_of "shipped" step_kv;
                    sr_received = kv_of "received" prom_kv;
                    sr_new = kv_of "new" prom_kv
                  })
                (List.combine step_kvs prom_kvs)
            in
            let rs =
              { r_round = r;
                r_wall_s;
                r_step_max_s = step_max;
                r_skew = skew;
                r_straggler = straggler;
                r_shards = shard_rounds
              }
            in
            if Obs.enabled () then begin
              Obs.Span.record "dist.round" round_t0_ns
                (Obs.now_ns () - round_t0_ns)
                ([ "round", string_of_int r;
                   "derived", string_of_int derived;
                   "shipped", string_of_int shipped;
                   "new", string_of_int fresh;
                   "skew", Printf.sprintf "%.2f" skew
                 ]
                @ (match tid with Some id -> [ "tid", id ] | None -> []));
              Query_log.Events.log ~kind:"dist.round"
                ([ "round", Json.Int r;
                   "wall_ms", Json.Float (r_wall_s *. 1e3);
                   "step_max_ms", Json.Float (step_max *. 1e3);
                   "skew", Json.Float skew;
                   "derived", Json.Int derived;
                   "shipped", Json.Int shipped;
                   "new", Json.Int fresh
                 ]
                @ (match straggler with
                  | Some s -> [ "straggler", Json.Int s ]
                  | None -> [])
                @ (match tid with Some id -> [ "tid", Json.Str id ] | None -> []))
            end;
            let acc =
              { acc with
                rounds = r;
                derived = acc.derived + derived;
                shipped_tuples = acc.shipped_tuples + shipped;
                shipped_bytes = acc.shipped_bytes + bytes;
                new_tuples = acc.new_tuples + fresh;
                skew_max = Float.max acc.skew_max skew;
                stragglers = acc.stragglers + (if straggler = None then 0 else 1);
                round_stats = rs :: acc.round_stats
              }
            in
            if fresh = 0 && shipped = 0 then
              Ok
                { acc with
                  wall_s = Unix.gettimeofday () -. t0;
                  round_stats = List.rev acc.round_stats
                }
            else round (r + 1) acc
          end)
    end
  in
  round 1 zero_stats
