(* The round-synchronous fixpoint coordinator.

   Each global round is a two-phase barrier over every worker:

     barrier step <r>     one local semi-naive round; derived tuples
                          for other shards are shipped peer-to-peer
                          and acknowledged before the worker replies
     barrier promote <r>  absorb buffered deltas into full + @delta

   A worker replies to [step] only after its outbound deltas are
   acked, so once every [step] reply is in, no delta is in flight and
   the coordinator may run [promote].  Global quiescence is then
   detected purely from the replies: the fixpoint is reached when a
   round promotes no new tuple anywhere and shipped nothing.  As a
   corruption tripwire, the tuples shipped in a round must equal the
   tuples received (receivers count pre-dedup): an imbalance means a
   lost or duplicated batch, and the run aborts rather than risk a
   silently incomplete fixpoint. *)

open Coral_server

type t = {
  clients : Shard_client.t array;
  addrs : string array;
  key : int;
}

type run_stats = {
  rounds : int;
  derived : int;  (* candidate-new tuples derived across all shards *)
  shipped_tuples : int;
  shipped_bytes : int;
  new_tuples : int;  (* tuples that survived promotion (post-dedup) *)
  wall_s : float;
}

let zero_stats = {
  rounds = 0; derived = 0; shipped_tuples = 0; shipped_bytes = 0;
  new_tuples = 0; wall_s = 0.
}

let create ~addrs ~key =
  let addrs = Array.of_list addrs in
  { clients = Array.map (fun a -> Shard_client.create a) addrs; addrs; key }

let shards t = Array.length t.clients
let addrs t = Array.to_list t.addrs
let partition t = Partition.create ~shards:(Array.length t.clients) ~key:t.key

let disconnect t = Array.iter Shard_client.disconnect t.clients

(* Run [f] against every worker concurrently and join.  Concurrency is
   required, not a luxury: worker A's step blocks until worker B acks
   A's delta batch, so stepping the workers one at a time would
   serialize rounds on cross-shard traffic (it would still terminate —
   deltas are absorbed on B's own connection threads — but every
   round would pay shard-count round trips). *)
let broadcast t f =
  let results = Array.map (fun _ -> Error (Protocol.Unavail, "no reply")) t.clients in
  let run i =
    results.(i) <-
      (try f i t.clients.(i)
       with Shard_client.Down m -> Error (Protocol.Unavail, m))
  in
  let threads = Array.mapi (fun i _ -> Thread.create run i) t.clients in
  Array.iter Thread.join threads;
  results

let first_error results =
  Array.fold_left
    (fun acc r -> match acc, r with None, Error e -> Some e | _ -> acc)
    None results

(* One command expecting an [ok] reply; the parsed kv detail on
   success, the propagated (code, message) on [err]. *)
let expect_ok client ?payload cmd =
  let _, status = Shard_client.request client ?payload cmd in
  match Shard_client.status_ok status with
  | Some detail -> Ok (Shard_client.kv_pairs detail)
  | None -> (
    match Shard_client.status_err status with
    | Some (code, msg) ->
      let code =
        Option.value (Protocol.code_of_string code) ~default:Protocol.Cluster
      in
      Error (code, Printf.sprintf "%s: %s" (Shard_client.addr client) msg)
    | None -> Error (Protocol.Proto, "unparseable reply: " ^ status))

let all_ok results =
  match first_error results with
  | Some e -> Error e
  | None ->
    Ok
      (Array.to_list results
      |> List.map (function Ok kv -> kv | Error _ -> assert false))

(* ------------------------------------------------------------------ *)
(* Cluster (re)provisioning                                            *)
(* ------------------------------------------------------------------ *)

let configure t =
  let peer_list = String.concat " " (Array.to_list t.addrs) in
  let n = Array.length t.clients in
  broadcast t (fun i client ->
      expect_ok client (Printf.sprintf "shard %d %d %d %s" i n t.key peer_list))
  |> all_ok
  |> Result.map (fun _ -> ())

let reset t =
  broadcast t (fun _ c -> expect_ok c "dreset") |> all_ok |> Result.map ignore

let send_payload t cmd text =
  let payload =
    if text = "" || text.[String.length text - 1] = '\n' then text else text ^ "\n"
  in
  broadcast t (fun _ c ->
      expect_ok c ~payload (Printf.sprintf "%s %d" cmd (String.length payload)))
  |> all_ok
  |> Result.map ignore

let send_edb t text = send_payload t "consult#" text
let send_program t text = send_payload t "dprog#" text

(* Ship one shard a delta batch outside the barrier loop.  Used to
   seed partitioned predicates that also have consulted base facts:
   the batch sits in the worker's exchange buffer and is absorbed at
   the first promote, exactly like a peer delta.  The caller passes
   the total seeded count to [run_fixpoint] so round 1's
   shipped-equals-received tripwire can account for it. *)
let send_delta t ~shard text =
  if shard < 0 || shard >= Array.length t.clients then
    Error (Protocol.Cluster, Printf.sprintf "seed delta for nonexistent shard %d" shard)
  else begin
    let payload =
      if text = "" || text.[String.length text - 1] = '\n' then text else text ^ "\n"
    in
    match
      expect_ok t.clients.(shard)
        ~payload
        (Printf.sprintf "delta# %d" (String.length payload))
    with
    | Ok _ -> Ok ()
    | Error e -> Error e
    | exception Shard_client.Down m -> Error (Protocol.Unavail, m)
  end

(* ------------------------------------------------------------------ *)
(* The fixpoint loop                                                   *)
(* ------------------------------------------------------------------ *)

let max_rounds = 100_000

let sum key kvs =
  List.fold_left (fun acc kv -> acc + Option.value (Shard_client.kv_int kv key) ~default:0) 0 kvs

let run_fixpoint ?(progress = fun ~round:_ ~new_tuples:_ ~shipped:_ -> ()) ?(seeded = 0) t =
  let t0 = Unix.gettimeofday () in
  let rec round r acc =
    if r > max_rounds then
      Error (Protocol.Cluster, Printf.sprintf "no fixpoint after %d rounds" max_rounds)
    else
      match
        broadcast t (fun _ c -> expect_ok c (Printf.sprintf "barrier step %d" r)) |> all_ok
      with
      | Error e -> Error e
      | Ok step_kvs -> (
        let derived = sum "derived" step_kvs in
        let shipped = sum "shipped" step_kvs in
        let bytes = sum "bytes" step_kvs in
        match
          broadcast t (fun _ c -> expect_ok c (Printf.sprintf "barrier promote %d" r))
          |> all_ok
        with
        | Error e -> Error e
        | Ok prom_kvs ->
          let fresh = sum "new" prom_kvs in
          (* round 1 also drains the pre-shipped seed deltas *)
          let received = sum "received" prom_kvs - if r = 1 then seeded else 0 in
          if shipped <> received then
            Error
              ( Protocol.Cluster,
                Printf.sprintf
                  "delta accounting imbalance in round %d: %d shipped, %d received" r
                  shipped received )
          else begin
            progress ~round:r ~new_tuples:fresh ~shipped;
            let acc =
              { acc with
                rounds = r;
                derived = acc.derived + derived;
                shipped_tuples = acc.shipped_tuples + shipped;
                shipped_bytes = acc.shipped_bytes + bytes;
                new_tuples = acc.new_tuples + fresh
              }
            in
            if fresh = 0 && shipped = 0 then
              Ok { acc with wall_s = Unix.gettimeofday () -. t0 }
            else round (r + 1) acc
          end)
  in
  round 1 zero_stats
