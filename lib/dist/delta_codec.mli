(** Encoding and decoding of delta batches.

    Batches are ordinary CORAL fact text ("path(1, 2)." per line):
    parseable by the stock parser, printable by the stock printers,
    debuggable over [nc]. *)

val fact_line : string -> Coral.Tuple.t -> string
(** ["pred(a, b)."] — no trailing newline.  Arity-0 tuples render as
    ["pred."]. *)

val decode : string -> (Coral.Ast.atom list, string) result
(** Parse a batch back into facts; any non-fact item is an error. *)
