(** Encoding and decoding of delta batches.

    Batches are ordinary CORAL fact text ("path(1, 2)." per line):
    parseable by the stock parser, printable by the stock printers,
    debuggable over [nc]. *)

exception Unencodable of string
(** Raised by [fact_line] for values with no fact syntax (non-finite
    doubles, opaque builtin values): shipping them would silently
    change the value, or its type, on the receiving worker. *)

val fact_line : string -> Coral.Tuple.t -> string
(** ["pred(a, b)."] — no trailing newline.  Arity-0 tuples render as
    ["pred."].  Printing is a lossless inverse of the parser: doubles
    keep their full precision and re-parse as doubles.
    @raise Unencodable on a value with no fact syntax. *)

val decode : string -> (Coral.Ast.atom list, string) result
(** Parse a batch back into facts; any non-fact item is an error. *)
