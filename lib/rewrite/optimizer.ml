open Coral_term
open Coral_lang

type mode = Materialized | Pipelined

type seed = {
  seed_pred : Symbol.t;
  seed_positions : int list;
  goal_id : bool;
}

type plan = {
  mode : mode;
  prules : Ast.rule list;
  answer_pred : Symbol.t;
  answer_arity : int;
  seed : seed option;
  fixpoint : Ast.fixpoint;
  lazy_eval : bool;
  save_module : bool;
  ordered_search : bool;
  origin : (Symbol.t * (Symbol.t * Ast.adornment)) list;
  annotations : Ast.annotation list;
  rewritten_text : string;
  notes : string list;
}

let done_name apred = Symbol.intern ("done#" ^ Symbol.name apred)

(* Each rewrite phase runs inside a tracing span so a Chrome trace of a
   slow planning step shows where the time went. *)
let span phase f = Coral_obs.Obs.Span.with_ ("rewrite." ^ phase) f

let rules_text rules =
  Format.asprintf "@[<v>%a@]"
    (fun ppf rs -> List.iter (fun r -> Format.fprintf ppf "%a@," Pretty.pp_rule r) rs)
    rules

(* Insert Ordered-Search done guards (paper section 5.4.1): a negated
   literal requires its subgoal's [done] fact.  An aggregate rule is
   guarded by the [done] fact of its {e own} head subgoal: the context
   pops subgoals LIFO, so by the time the head's subgoal is done, every
   subgoal its evaluation generated — in particular every subgoal
   feeding the group — has already completed, making the group's row
   set complete. *)
let add_done_guards origin rules =
  let guard (a : Ast.atom) =
    match Magic.bound_args origin a with
    | None -> None
    | Some bargs -> Some (Ast.Pos { Ast.pred = done_name a.Ast.pred; args = bargs })
  in
  List.map
    (fun (r : Ast.rule) ->
      let aggregating = not (Ast.head_is_plain r.Ast.head) in
      let body =
        List.concat_map
          (fun lit ->
            match (lit : Ast.literal) with
            | Ast.Neg a -> begin
              match guard a with Some g -> [ g; lit ] | None -> [ lit ]
            end
            | _ -> [ lit ])
          r.Ast.body
      in
      let body =
        if aggregating then begin
          match guard (Ast.atom_of_head r.Ast.head) with
          | Some g -> begin
            (* after the magic guard, which binds the head's bound args *)
            match body with
            | magic_guard :: rest -> magic_guard :: g :: rest
            | [] -> [ g ]
          end
          | None -> body
        end
        else body
      in
      { r with Ast.body })
    rules

let origin_assoc (tbl : (Symbol.t * Ast.adornment) Symbol.Tbl.t) =
  Symbol.Tbl.fold (fun k v acc -> (k, v) :: acc) tbl []

let identity_origin rules =
  List.map
    (fun (r : Ast.rule) ->
      let p = r.Ast.head.Ast.hpred in
      p, (p, Array.make (Array.length r.Ast.head.Ast.hargs) Ast.Free))
    rules
  |> List.sort_uniq compare

let plan_query ~module_:(m : Ast.module_) ~pred ~adorn:query_adorn =
  let issues = Wellformed.check_module m in
  match Wellformed.errors issues with
  | _ :: _ as errs ->
    Error
      (String.concat "\n" (List.map (fun i -> Format.asprintf "%a" Wellformed.pp_issue i) errs))
  | [] ->
    let anns = m.Ast.annotations in
    let has a = List.mem a anns in
    let defined =
      List.exists (fun (r : Ast.rule) -> Symbol.equal r.Ast.head.Ast.hpred pred) m.Ast.rules
    in
    if not defined then
      Error (Printf.sprintf "predicate %s is not defined in module %s" (Symbol.name pred) m.Ast.mname)
    else begin
      let arity =
        List.find_map
          (fun (r : Ast.rule) ->
            if Symbol.equal r.Ast.head.Ast.hpred pred then
              Some (Array.length r.Ast.head.Ast.hargs)
            else None)
          m.Ast.rules
        |> Option.get
      in
      if Array.length query_adorn <> arity then
        Error
          (Printf.sprintf "query form arity %d does not match %s/%d"
             (Array.length query_adorn) (Symbol.name pred) arity)
      else if has Ast.Ann_pipelined then
        Ok
          { mode = Pipelined;
            prules = m.Ast.rules;
            answer_pred = pred;
            answer_arity = arity;
            seed = None;
            fixpoint = Ast.Basic_seminaive;
            lazy_eval = false;
            save_module = has Ast.Ann_save_module;
            ordered_search = false;
            origin = identity_origin m.Ast.rules;
            annotations = anns;
            rewritten_text = rules_text m.Ast.rules;
            notes = [ "pipelined evaluation: no rewriting" ]
          }
      else begin
        let notes = ref [] in
        let note s = notes := s :: !notes in
        let graph = Scc.analyze m.Ast.rules in
        let requested_fixpoint =
          List.find_map (function Ast.Ann_fixpoint f -> Some f | _ -> None) anns
        in
        let stratified = Scc.is_stratified graph in
        let fixpoint =
          match requested_fixpoint with
          | Some f -> f
          | None ->
            if stratified then Ast.Basic_seminaive
            else begin
              note "program is not stratified: selecting Ordered Search";
              Ast.Ordered_search
            end
        in
        if (not stratified) && fixpoint <> Ast.Ordered_search then
          Error
            (Printf.sprintf
               "module %s is not stratified (%s); use @ordered_search"
               m.Ast.mname
               (String.concat ", "
                  (List.map
                     (fun (a, b) -> Symbol.name a ^ "->" ^ Symbol.name b)
                     graph.Scc.nonstratified)))
        else begin
          let requested_rewriting =
            List.find_map (function Ast.Ann_rewriting r -> Some r | _ -> None) anns
          in
          let sip =
            Option.value ~default:Ast.Left_to_right
              (List.find_map (function Ast.Ann_sip s -> Some s | _ -> None) anns)
          in
          if sip <> Ast.Left_to_right then note "max-bound sideways information passing";
          let no_bound = not (Array.exists (fun b -> b = Ast.Bound) query_adorn) in
          let finish ?seed ~prules ~answer_pred ~origin () =
            let prules, dropped =
              if has Ast.Ann_no_existential then prules, 0
              else begin
                let keep =
                  answer_pred
                  :: (match seed with Some s -> [ s.seed_pred ] | None -> [])
                in
                span "existential" (fun () -> Existential.rewrite ~keep prules)
              end
            in
            if dropped > 0 then
              note (Printf.sprintf "existential rewriting dropped %d columns" dropped);
            Ok
              { mode = Materialized;
                prules;
                answer_pred;
                answer_arity = arity;
                seed;
                fixpoint;
                lazy_eval = has Ast.Ann_lazy_eval;
                save_module = has Ast.Ann_save_module;
                ordered_search = fixpoint = Ast.Ordered_search;
                origin;
                annotations = anns;
                rewritten_text = rules_text prules;
                notes = List.rev !notes
              }
          in
          let unrewritten () =
            finish ~prules:m.Ast.rules ~answer_pred:pred
              ~origin:(identity_origin m.Ast.rules) ()
          in
          if fixpoint = Ast.Ordered_search then begin
            (* Ordered Search: magic with bindings pushed into negation
               and aggregation, plus done guards. *)
            let adorned =
              span "adorn" (fun () ->
                  Adorn.adorn ~bind_negated:true ~bind_aggregates:true ~sip m.Ast.rules
                    ~query:pred ~adorn:query_adorn)
            in
            let mr = span "magic" (fun () -> Magic.rewrite adorned) in
            let guarded = add_done_guards adorned.Adorn.origin mr.Magic.mrules in
            note "ordered search: magic rewriting with done guards";
            finish
              ~seed:
                { seed_pred = mr.Magic.seed_pred;
                  seed_positions = mr.Magic.seed_positions;
                  goal_id = false
                }
              ~prules:guarded ~answer_pred:mr.Magic.answer_pred
              ~origin:(origin_assoc adorned.Adorn.origin) ()
          end
          else if requested_rewriting = Some Ast.No_rewriting then begin
            note "no rewriting (requested)";
            unrewritten ()
          end
          else if no_bound then begin
            note "query form has no bound argument: rewriting is a no-op, skipped";
            unrewritten ()
          end
          else begin
            let adorned =
              span "adorn" (fun () -> Adorn.adorn ~sip m.Ast.rules ~query:pred ~adorn:query_adorn)
            in
            let chosen = Option.value requested_rewriting ~default:Ast.Supplementary_magic in
            let mr =
              match chosen with
              | Ast.Magic ->
                note "magic templates rewriting";
                span "magic" (fun () -> Magic.rewrite adorned)
              | Ast.Supplementary_magic ->
                note "supplementary magic rewriting (default)";
                span "supp_magic" (fun () -> Supp_magic.rewrite adorned)
              | Ast.Supplementary_magic_goal_id ->
                note "supplementary magic with goal-id indexing";
                span "supp_magic" (fun () -> Supp_magic.rewrite_goal_id adorned)
              | Ast.Factoring -> begin
                match span "factoring" (fun () -> Factoring.rewrite adorned) with
                | Some r ->
                  note "context factoring applies";
                  r
                | None ->
                  note "factoring not applicable: falling back to supplementary magic";
                  span "supp_magic" (fun () -> Supp_magic.rewrite adorned)
              end
              | Ast.No_rewriting -> assert false
            in
            (* Magic rewriting can destroy stratification; in that case
               fall back to unrewritten evaluation, which is always
               sound for a stratified source program. *)
            let rewritten_graph = Scc.analyze mr.Magic.mrules in
            if not (Scc.is_stratified rewritten_graph) then begin
              note "rewriting would break stratification: falling back to no rewriting";
              unrewritten ()
            end
            else
              finish
                ~seed:
                  { seed_pred = mr.Magic.seed_pred;
                    seed_positions = mr.Magic.seed_positions;
                    goal_id = mr.Magic.goal_id
                  }
                ~prules:mr.Magic.mrules ~answer_pred:mr.Magic.answer_pred
                ~origin:(origin_assoc adorned.Adorn.origin) ()
          end
        end
      end
    end

let pp_plan ppf p =
  Format.fprintf ppf "@[<v>%% mode: %s, fixpoint: %s%s%s%s@,"
    (match p.mode with Materialized -> "materialized" | Pipelined -> "pipelined")
    (match p.fixpoint with
    | Ast.Basic_seminaive -> "basic semi-naive"
    | Ast.Predicate_seminaive -> "predicate semi-naive"
    | Ast.Naive -> "naive"
    | Ast.Ordered_search -> "ordered search")
    (if p.lazy_eval then ", lazy" else "")
    (if p.save_module then ", save module" else "")
    (match p.seed with
    | Some s -> Printf.sprintf ", seed %s" (Symbol.name s.seed_pred)
    | None -> "");
  List.iter (fun n -> Format.fprintf ppf "%% %s@," n) p.notes;
  Format.fprintf ppf "%s@]" p.rewritten_text
