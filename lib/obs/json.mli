(** A minimal JSON value type with a compact renderer and a parser —
    used by the structured event log and by tests that round-trip what
    the obs layer emits.  No external dependencies. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact one-line rendering.  Non-finite floats render as [null]. *)

val parse : string -> (t, string) result
(** Parse one JSON value; [Error] carries a message with an offset.
    Numbers without a fraction or exponent parse as [Int]. *)

val member : string -> t -> t option
(** [member k v] is the field [k] of object [v], if any. *)
