(** Observability core: named metrics, span tracing, exporters.

    All recording is gated on one global switch ([set_enabled]); with
    it off (the default) every record call is a load and a branch, so
    hot paths can stay instrumented unconditionally.  Updates are
    atomic and safe under the server's thread-per-connection model. *)

val enabled : unit -> bool
val set_enabled : bool -> unit

(** Wall clock in integer nanoseconds (microsecond resolution). *)
val now_ns : unit -> int

val version : string
(** Reported in [coral_build_info]. *)

val process_start_ns : int
(** Wall-clock time this process initialized the obs library. *)

module Counter : sig
  type t

  val v : string -> t
  (** An unregistered counter — use {!val-counter} for registry-backed cells. *)

  val name : t -> string
  val incr : t -> unit
  val add : t -> int -> unit
  val value : t -> int
  val reset : t -> unit
end

module Gauge : sig
  type t

  val v : string -> t
  val name : t -> string
  val set : t -> int -> unit
  val add : t -> int -> unit
  val value : t -> int
  val reset : t -> unit
end

module Histogram : sig
  type t

  val nbuckets : int

  val v : string -> t
  val name : t -> string

  val bucket_le_ns : int -> int
  (** Upper bound (inclusive, ns) of bucket [i]: [2^i].  The final
      bucket additionally absorbs everything larger. *)

  val bucket_index : int -> int
  (** Index of the bucket an observation of [ns] lands in. *)

  val observe_ns : t -> int -> unit

  val time : t -> (unit -> 'a) -> 'a
  (** Run the thunk and observe its wall duration; just the thunk when
      recording is disabled. *)

  val count : t -> int
  val sum_ns : t -> int

  val bucket_counts : t -> int array
  (** Per-bucket (non-cumulative) counts, a snapshot. *)

  val reset : t -> unit
end

(** {1 Registry}

    Registration is idempotent per (name, kind): registering a name
    twice returns the same cell.  Registering an existing name as a
    different kind raises [Invalid_argument]. *)

type metric =
  | M_counter of Counter.t
  | M_gauge of Gauge.t
  | M_histogram of Histogram.t

val counter : string -> Counter.t
val gauge : string -> Gauge.t
val histogram : string -> Histogram.t

val metrics : unit -> (string * metric) list
(** All registered metrics, sorted by name. *)

val find : string -> metric option
val reset_all : unit -> unit

(** {1 Prometheus text exposition} *)

val prometheus : unit -> string
(** Render every registered metric.  Names are prefixed with [coral_]
    and dots become underscores; histogram buckets are cumulative with
    [le] bounds in seconds. *)

val prometheus_sample : Buffer.t -> kind:string -> string -> int -> unit
(** Append one unregistered sample (kind is ["counter"] or ["gauge"])
    — for values owned by another component and read at scrape time. *)

val prometheus_sample_f : Buffer.t -> kind:string -> string -> float -> unit
(** [prometheus_sample] for float-valued gauges (ratios, seconds). *)

val prometheus_sample_labeled :
  Buffer.t ->
  ?typ:bool ->
  kind:string ->
  labels:(string * string) list ->
  string ->
  float ->
  unit
(** One sample with {k="v",...} labels.  [typ:false] suppresses the
    [# TYPE] header so repeated series of one metric (per-shard lines)
    emit it only once. *)

(** {1 Trace context}

    A per-thread trace id installed by the serving layer for the
    duration of a request.  Spans and events recorded on that thread
    are stamped with it, which is what lets a router stitch its own
    spans together with each worker's into one cross-process trace.
    The context does not follow work submitted to domain pools —
    capture [current ()] before fanning out. *)

module Trace : sig
  val fresh : unit -> string
  (** A new process-unique trace id (["t<origin>-<seq>"]). *)

  val set : string -> unit
  val clear : unit -> unit
  val current : unit -> string option

  val with_id : string option -> (unit -> 'a) -> 'a
  (** Run the thunk with the given trace context installed; [None]
      leaves the current context untouched. *)

  val valid_id : string -> bool
  (** Whether a wire-received id is safe to adopt (short, [[A-Za-z0-9._-]]). *)
end

(** {1 Span tracing}

    Completed spans land in a fixed-size ring buffer (newest wins on
    wraparound) and can be exported as Chrome [trace_event] JSON for
    chrome://tracing / Perfetto. *)

module Span : sig
  type span = {
    sname : string;
    ts_ns : int;
    dur_ns : int;
    attrs : (string * string) list;
  }

  val with_ : ?attrs:(unit -> (string * string) list) -> string -> (unit -> 'a) -> 'a
  (** Run the thunk inside a span.  [attrs] is a thunk so attribute
      strings cost nothing when tracing is off. *)

  val record : string -> int -> int -> (string * string) list -> unit
  (** [record name ts_ns dur_ns attrs] stores one completed span
      directly.  Not gated on the global switch — callers that build
      attributes eagerly should check {!enabled} first.  The calling
      thread's trace id (if any) is stamped into [attrs]. *)

  val set_capacity : int -> unit
  (** Resize the ring (drops recorded spans). *)

  val clear : unit -> unit

  val recorded : unit -> span list
  (** Spans still in the ring, oldest first. *)

  val count : unit -> int
  (** Total spans ever recorded (including overwritten ones). *)

  val to_chrome_json : unit -> string

  val matching : string -> span list
  (** Spans in the ring stamped with the given trace id, oldest first. *)

  val to_json : span -> string
  (** One span as a single-line JSON object (the [spans <tid>] wire
      format). *)

  val of_json : string -> (span, string) result

  val to_chrome_json_lanes : (string * span list) list -> string
  (** Stitched multi-process export: each [(label, spans)] pair
      renders as its own pid lane (named via a [process_name] metadata
      event) sharing one time axis — router fan-out and every worker's
      rounds in a single flame view. *)
end
