(** The active-query registry and the structured event log.

    Registry: every in-flight evaluation registers a descriptor and
    the fixpoint publishes per-iteration progress into it.  Progress
    writes touch only atomics (plus an immutable lane-array swap), so
    the hot path takes no locks; a mutex guards just the id table at
    register/unregister/list/kill granularity.  Not gated on
    {!Obs.enabled}: [ps] / [kill] are operational controls, not
    telemetry.

    Event log: append-only JSONL in a fixed in-memory ring (powering
    the [events <n>] wire command), optionally mirrored to a file with
    size-based rotation; entries slower than the configured threshold
    are flagged and mirrored to stderr. *)

type entry

val register :
  ?session:int ->
  ?deadline_ms:int ->
  ?workers:int ->
  ?epoch:int ->
  ?adorned:string ->
  ?kind:string ->
  string ->
  entry
(** Register an in-flight evaluation (the argument is the request
    text).  The entry stays listed until {!unregister}.  [epoch]
    (default 0 = unknown) is the snapshot epoch the request pinned;
    [ps] prints it when nonzero. *)

val unregister : entry -> unit

val progress : entry -> delta:int -> lanes:int array -> unit
(** Per-iteration hook target: bumps the iteration counter, folds
    [delta] into cumulative derivations, swaps in the per-lane task
    snapshot ([[||]] when sequential).  Lock-free. *)

val id : entry -> int
val iterations : entry -> int
val derivations : entry -> int

val killed : entry -> bool
(** Whether {!kill} has been signalled for this entry — evaluations
    poll this from their cooperative cancel check. *)

val kill : int -> bool
(** Signal cooperative cancellation of the active query with this id;
    false when no such query is active. *)

type snapshot = {
  s_id : int;
  s_session : int;
  s_kind : string;
  s_text : string;
  s_adorned : string;
  s_age_ns : int;
  s_deadline_ms : int;
  s_workers : int;
  s_epoch : int;
  s_iterations : int;
  s_derivations : int;
  s_last_delta : int;
  s_lanes : int array;
  s_killed : bool;
}

val active : unit -> snapshot list
(** Consistent point-in-time snapshots of every registered query,
    sorted by id. *)

val active_count : unit -> int

module Events : sig
  val configure :
    ?enabled:bool -> ?path:string -> ?max_bytes:int -> ?slow_ms:int -> unit -> unit
  (** [enabled] (default true) switches all event recording;
      [path] attaches (or with [""] detaches) a JSONL file sink;
      [max_bytes] (default 4 MiB, floor 4 KiB) rotates [path] to
      [path.1] before it would be exceeded, bounding the pair at about
      twice the budget; [slow_ms] (default 0 = off) flags slower
      queries and mirrors them to stderr. *)

  val slow_ms : unit -> int

  val log : kind:string -> (string * Json.t) list -> unit
  (** Append one event ([ts] and [kind] fields are added). *)

  val query_event :
    kind:string ->
    id:int ->
    session:int ->
    text:string ->
    latency_ms:float ->
    rows:int ->
    iterations:int ->
    derivations:int ->
    plan_cache:string ->
    outcome:string ->
    unit ->
    unit
  (** Append a request-completion record; [outcome] is one of
      ok / timeout / killed / error, [plan_cache] "" omits the field.
      The query text is clipped to 200 bytes. *)

  val recent : int -> string list
  (** The newest [n] event lines still in the ring, oldest first. *)

  val total : unit -> int
  (** Events ever logged (including ones rotated out of the ring). *)

  val reset : unit -> unit
  (** Drop the ring, detach the file sink, restore defaults (tests). *)
end
