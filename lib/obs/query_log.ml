(* The active-query registry and the structured event log.

   Registry: every in-flight evaluation registers a descriptor; the
   fixpoint publishes live progress into it through a per-iteration
   hook.  The hot path writes only atomics (counters and an immutable
   lane-snapshot swap, the same discipline as the metric cells in
   obs.ml); the registry mutex guards only the id table, touched at
   register/unregister/list/kill granularity — never per iteration.
   Unlike the metric cells this is *not* gated on [Obs.enabled]: `ps`
   and `kill` are operational controls, not telemetry, and must work
   on a server that never turned metrics on.

   Event log: append-only JSONL, one object per completed request
   (plus consult/insert/recovery events), held in a fixed in-memory
   ring for the `events <n>` wire command and optionally mirrored to a
   file with size-based rotation (<path> is renamed to <path>.1 when
   it would exceed the byte budget, so the pair is bounded by about
   twice the budget).  Queries slower than the configured threshold
   are flagged and mirrored to stderr. *)

type entry = {
  id : int;
  session : int;
  kind : string;  (* query | consult | explain_analyze | why | repl | bench *)
  text : string;
  adorned : string;
  started_ns : int;
  deadline_ms : int;
  workers : int;
  epoch : int;  (* snapshot epoch pinned by the request; 0 = unknown/locked lane *)
  iterations : int Atomic.t;  (* productive fixpoint steps, monotonic *)
  derivations : int Atomic.t;  (* cumulative inserts across nested instances *)
  last_delta : int Atomic.t;
  lanes : int array Atomic.t;  (* per-lane task counts; [||] when sequential *)
  killed : bool Atomic.t;
}

type snapshot = {
  s_id : int;
  s_session : int;
  s_kind : string;
  s_text : string;
  s_adorned : string;
  s_age_ns : int;
  s_deadline_ms : int;
  s_workers : int;
  s_epoch : int;
  s_iterations : int;
  s_derivations : int;
  s_last_delta : int;
  s_lanes : int array;
  s_killed : bool;
}

let table : (int, entry) Hashtbl.t = Hashtbl.create 16
let table_lock = Mutex.create ()
let next_id = Atomic.make 0

let locked lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let register ?(session = 0) ?(deadline_ms = 0) ?(workers = 1) ?(epoch = 0) ?(adorned = "")
    ?(kind = "query") text =
  let e =
    { id = Atomic.fetch_and_add next_id 1 + 1;
      session;
      kind;
      text;
      adorned;
      started_ns = Obs.now_ns ();
      deadline_ms;
      workers;
      epoch;
      iterations = Atomic.make 0;
      derivations = Atomic.make 0;
      last_delta = Atomic.make 0;
      lanes = Atomic.make [||];
      killed = Atomic.make false
    }
  in
  locked table_lock (fun () -> Hashtbl.replace table e.id e);
  e

let unregister e = locked table_lock (fun () -> Hashtbl.remove table e.id)

(* The per-iteration hook target: atomics only, no locks. *)
let progress e ~delta ~lanes =
  Atomic.incr e.iterations;
  if delta > 0 then ignore (Atomic.fetch_and_add e.derivations delta);
  Atomic.set e.last_delta delta;
  if lanes <> [||] then Atomic.set e.lanes lanes

let id e = e.id
let iterations e = Atomic.get e.iterations
let derivations e = Atomic.get e.derivations
let killed e = Atomic.get e.killed

let kill qid =
  locked table_lock (fun () ->
      match Hashtbl.find_opt table qid with
      | Some e ->
        Atomic.set e.killed true;
        true
      | None -> false)

let snapshot_of now e =
  { s_id = e.id;
    s_session = e.session;
    s_kind = e.kind;
    s_text = e.text;
    s_adorned = e.adorned;
    s_age_ns = max 0 (now - e.started_ns);
    s_deadline_ms = e.deadline_ms;
    s_workers = e.workers;
    s_epoch = e.epoch;
    s_iterations = Atomic.get e.iterations;
    s_derivations = Atomic.get e.derivations;
    s_last_delta = Atomic.get e.last_delta;
    s_lanes = Atomic.get e.lanes;
    s_killed = Atomic.get e.killed
  }

let active () =
  let now = Obs.now_ns () in
  locked table_lock (fun () -> Hashtbl.fold (fun _ e acc -> snapshot_of now e :: acc) table [])
  |> List.sort (fun a b -> compare a.s_id b.s_id)

let active_count () = locked table_lock (fun () -> Hashtbl.length table)

(* ------------------------------------------------------------------ *)
(* The event log                                                      *)
(* ------------------------------------------------------------------ *)

module Events = struct
  let ring_capacity = 1024

  type state = {
    mutable enabled : bool;
    ring : string array;
    mutable cursor : int;  (* total events ever logged *)
    mutable path : string;  (* "" = in-memory ring only *)
    mutable oc : out_channel option;
    mutable bytes : int;  (* written to the current file *)
    mutable max_bytes : int;
    mutable slow_ms : int;  (* 0 = slow-query flagging off *)
  }

  let st =
    { enabled = true;
      ring = Array.make ring_capacity "";
      cursor = 0;
      path = "";
      oc = None;
      bytes = 0;
      max_bytes = 4 * 1024 * 1024;
      slow_ms = 0
    }

  let lock = Mutex.create ()

  let close_sink () =
    (match st.oc with Some oc -> close_out_noerr oc | None -> ());
    st.oc <- None

  let open_sink () =
    if st.path <> "" then begin
      let oc = open_out_gen [ Open_wronly; Open_append; Open_creat ] 0o644 st.path in
      st.oc <- Some oc;
      st.bytes <- (try (Unix.stat st.path).Unix.st_size with Unix.Unix_error _ -> 0)
    end

  let configure ?enabled ?path ?max_bytes ?slow_ms () =
    locked lock (fun () ->
        (match enabled with Some b -> st.enabled <- b | None -> ());
        (match max_bytes with Some n -> st.max_bytes <- max 4096 n | None -> ());
        (match slow_ms with Some n -> st.slow_ms <- max 0 n | None -> ());
        match path with
        | Some p ->
          close_sink ();
          st.path <- p;
          st.bytes <- 0;
          open_sink ()
        | None -> ())

  let slow_ms () = st.slow_ms

  (* caller holds [lock] *)
  let sink line =
    st.ring.(st.cursor mod ring_capacity) <- line;
    st.cursor <- st.cursor + 1;
    match st.oc with
    | None -> ()
    | Some oc ->
      let len = String.length line + 1 in
      let oc =
        if st.bytes > 0 && st.bytes + len > st.max_bytes then begin
          (* rotate: the live file becomes .1 (replacing any previous
             .1), so path + path.1 together stay bounded *)
          close_sink ();
          (try Sys.rename st.path (st.path ^ ".1") with Sys_error _ -> ());
          open_sink ();
          match st.oc with Some oc -> oc | None -> oc
        end
        else oc
      in
      (try
         output_string oc line;
         output_char oc '\n';
         flush oc;
         st.bytes <- st.bytes + len
       with Sys_error _ -> ())

  let log ~kind fields =
    if st.enabled then begin
      (* Stamp the calling thread's trace id so JSONL lines from a
         distributed request can be correlated with its spans. *)
      let fields =
        if List.mem_assoc "tid" fields then fields
        else
          match Obs.Trace.current () with
          | Some id -> ("tid", Json.Str id) :: fields
          | None -> fields
      in
      let line =
        Json.to_string
          (Json.Obj
             (("ts", Json.Float (Unix.gettimeofday ())) :: ("kind", Json.Str kind) :: fields))
      in
      locked lock (fun () -> sink line)
    end

  let clip text =
    if String.length text <= 200 then text else String.sub text 0 197 ^ "..."

  let query_event ~kind ~id ~session ~text ~latency_ms ~rows ~iterations ~derivations
      ~plan_cache ~outcome () =
    if st.enabled then begin
      let slow = st.slow_ms > 0 && latency_ms >= float_of_int st.slow_ms in
      let fields =
        [ "id", Json.Int id;
          "session", Json.Int session;
          "query", Json.Str (clip text);
          "latency_ms", Json.Float latency_ms;
          "rows", Json.Int rows;
          "iterations", Json.Int iterations;
          "derivations", Json.Int derivations
        ]
        @ (if plan_cache = "" then [] else [ "plan_cache", Json.Str plan_cache ])
        @ [ "outcome", Json.Str outcome ]
        @ if slow then [ "slow", Json.Bool true ] else []
      in
      log ~kind fields;
      if slow then
        Printf.eprintf "coral: slow %s %d (%.1fms, outcome %s): %s\n%!" kind id latency_ms
          outcome (clip text)
    end

  let recent n =
    locked lock (fun () ->
        let n = max 0 n in
        let first = max 0 (st.cursor - min n ring_capacity) in
        List.init (st.cursor - first) (fun i -> st.ring.((first + i) mod ring_capacity)))

  let total () = st.cursor

  (* test/bench isolation: drop the ring and detach any file sink *)
  let reset () =
    locked lock (fun () ->
        close_sink ();
        Array.fill st.ring 0 ring_capacity "";
        st.cursor <- 0;
        st.path <- "";
        st.bytes <- 0;
        st.max_bytes <- 4 * 1024 * 1024;
        st.slow_ms <- 0;
        st.enabled <- true)
end
