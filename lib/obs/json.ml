(* A minimal JSON value type with a compact one-line renderer and a
   parser — enough for the structured event log and for tests that
   round-trip what the obs layer emits.  No external dependencies; not
   a general-purpose library (no streaming, integers are OCaml ints). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Rendering                                                          *)
(* ------------------------------------------------------------------ *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 32 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr f =
  if Float.is_nan f || Float.is_integer f && Float.abs f >= 1e15 then "null"
  else if f = Float.infinity || f = Float.neg_infinity then "null"
  else if Float.is_integer f then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.12g" f

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f -> Buffer.add_string buf (float_repr f)
  | Str s -> escape buf s
  | List vs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char buf ',';
        write buf v)
      vs;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape buf k;
        Buffer.add_char buf ':';
        write buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  write buf v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing                                                            *)
(* ------------------------------------------------------------------ *)

exception Bad of string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail msg = raise (Bad (Printf.sprintf "%s at offset %d" msg !pos)) in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  (* \uXXXX escapes are decoded to UTF-8; lone surrogates become the
     replacement character, which is all the event log ever needs. *)
  let utf8 buf cp =
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> begin
        advance ();
        (match peek () with
        | Some '"' -> Buffer.add_char buf '"'
        | Some '\\' -> Buffer.add_char buf '\\'
        | Some '/' -> Buffer.add_char buf '/'
        | Some 'b' -> Buffer.add_char buf '\b'
        | Some 'f' -> Buffer.add_char buf '\012'
        | Some 'n' -> Buffer.add_char buf '\n'
        | Some 'r' -> Buffer.add_char buf '\r'
        | Some 't' -> Buffer.add_char buf '\t'
        | Some 'u' ->
          if !pos + 4 >= n then fail "truncated \\u escape";
          let hex = String.sub s (!pos + 1) 4 in
          let cp =
            match int_of_string_opt ("0x" ^ hex) with
            | Some cp -> cp
            | None -> fail "bad \\u escape"
          in
          pos := !pos + 4;
          utf8 buf (if cp >= 0xD800 && cp <= 0xDFFF then 0xFFFD else cp)
        | _ -> fail "bad escape");
        advance ();
        go ()
      end
      | Some c ->
        advance ();
        Buffer.add_char buf c;
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    in
    while (match peek () with Some c when is_num_char c -> true | _ -> false) do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    if String.contains text '.' || String.contains text 'e' || String.contains text 'E'
    then begin
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail "bad number"
    end
    else begin
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> (
        match float_of_string_opt text with
        | Some f -> Float f
        | None -> fail "bad number")
    end
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec fields acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            fields ((k, v) :: acc)
          | Some '}' ->
            advance ();
            List.rev ((k, v) :: acc)
          | _ -> fail "expected , or } in object"
        in
        Obj (fields [])
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let rec elems acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elems (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> fail "expected , or ] in array"
        in
        List (elems [])
      end
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected character %C" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Bad msg -> Error msg

let member name = function
  | Obj fields -> List.assoc_opt name fields
  | _ -> None
