(* The observability core: named metrics, span tracing, exporters.

   Everything funnels through one global switch: with [enabled] off
   (the default) every record operation returns immediately, so code
   can instrument hot paths unconditionally and embedders that never
   look at metrics pay only a load and a branch.  Updates use [Atomic]
   so concurrent server threads never lose increments; reads are
   tear-free snapshots of individual cells (a scrape racing a writer
   may see a histogram count one ahead of its sum, which Prometheus
   semantics tolerate). *)

let on = Atomic.make false
let enabled () = Atomic.get on
let set_enabled flag = Atomic.set on flag

(* Wall clock in integer nanoseconds.  gettimeofday has microsecond
   resolution, which is fine for spans and phase histograms; work
   counters, not clocks, are the machine-independent measures. *)
let now_ns () = int_of_float (Unix.gettimeofday () *. 1e9)

(* Exposed as coral_build_info / process start-time gauges on the
   Prometheus endpoint.  The version tracks the PR sequence, not any
   external release scheme. *)
let version = "0.5.0"
let process_start_ns = now_ns ()

(* ------------------------------------------------------------------ *)
(* Metric cells                                                       *)
(* ------------------------------------------------------------------ *)

module Counter = struct
  type t = { cname : string; cell : int Atomic.t }

  let v name = { cname = name; cell = Atomic.make 0 }
  let name c = c.cname
  let add c n = if Atomic.get on then ignore (Atomic.fetch_and_add c.cell n)
  let incr c = add c 1
  let value c = Atomic.get c.cell
  let reset c = Atomic.set c.cell 0
end

module Gauge = struct
  type t = { gname : string; cell : int Atomic.t }

  let v name = { gname = name; cell = Atomic.make 0 }
  let name g = g.gname
  let set g n = if Atomic.get on then Atomic.set g.cell n
  let add g n = if Atomic.get on then ignore (Atomic.fetch_and_add g.cell n)
  let value g = Atomic.get g.cell
  let reset g = Atomic.set g.cell 0
end

module Histogram = struct
  (* Log-scale (base 2) buckets over nanoseconds: bucket [i] counts
     observations with value <= 2^i ns, the last bucket is +Inf.  48
     buckets cover one nanosecond to about 39 hours, so any request
     latency or phase duration lands in a real bucket. *)
  let nbuckets = 48

  type t = {
    hname : string;
    buckets : int Atomic.t array;  (* non-cumulative per-bucket counts *)
    count : int Atomic.t;
    sum : int Atomic.t;  (* total of observed values, ns *)
  }

  let v name =
    { hname = name;
      buckets = Array.init nbuckets (fun _ -> Atomic.make 0);
      count = Atomic.make 0;
      sum = Atomic.make 0
    }

  let name h = h.hname

  let bucket_le_ns i = 1 lsl i

  let bucket_index ns =
    if ns <= 1 then 0
    else begin
      let rec go i = if i >= nbuckets - 1 || ns <= 1 lsl i then i else go (i + 1) in
      go 1
    end

  let observe_ns h ns =
    if Atomic.get on then begin
      let ns = max 0 ns in
      ignore (Atomic.fetch_and_add h.buckets.(bucket_index ns) 1);
      ignore (Atomic.fetch_and_add h.count 1);
      ignore (Atomic.fetch_and_add h.sum ns)
    end

  (* [time h f] observes f's wall duration; with the switch off it is
     exactly [f ()] — no clock reads. *)
  let time h f =
    if Atomic.get on then begin
      let t0 = now_ns () in
      Fun.protect ~finally:(fun () -> observe_ns h (now_ns () - t0)) f
    end
    else f ()

  let count h = Atomic.get h.count
  let sum_ns h = Atomic.get h.sum
  let bucket_counts h = Array.map Atomic.get h.buckets

  let reset h =
    Array.iter (fun c -> Atomic.set c 0) h.buckets;
    Atomic.set h.count 0;
    Atomic.set h.sum 0
end

(* ------------------------------------------------------------------ *)
(* The registry                                                       *)
(* ------------------------------------------------------------------ *)

type metric =
  | M_counter of Counter.t
  | M_gauge of Gauge.t
  | M_histogram of Histogram.t

let registry : (string, metric) Hashtbl.t = Hashtbl.create 64
let registry_lock = Mutex.create ()

let registered f =
  Mutex.lock registry_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_lock) f

let kind_name = function
  | M_counter _ -> "counter"
  | M_gauge _ -> "gauge"
  | M_histogram _ -> "histogram"

(* Registration is idempotent per (name, kind): asking again returns
   the same cell, so independent modules can share a metric by name.
   Re-registering a name as a different kind is a programming error. *)
let register name make pick =
  registered (fun () ->
      match Hashtbl.find_opt registry name with
      | Some m -> begin
        match pick m with
        | Some cell -> cell
        | None ->
          invalid_arg
            (Printf.sprintf "Obs: metric %S already registered as a %s" name (kind_name m))
      end
      | None ->
        let cell = make () in
        let m, v = cell in
        Hashtbl.add registry name m;
        v)

let counter name =
  register name
    (fun () ->
      let c = Counter.v name in
      M_counter c, c)
    (function M_counter c -> Some c | _ -> None)

let gauge name =
  register name
    (fun () ->
      let g = Gauge.v name in
      M_gauge g, g)
    (function M_gauge g -> Some g | _ -> None)

let histogram name =
  register name
    (fun () ->
      let h = Histogram.v name in
      M_histogram h, h)
    (function M_histogram h -> Some h | _ -> None)

let metrics () =
  registered (fun () ->
      Hashtbl.fold (fun name m acc -> (name, m) :: acc) registry []
      |> List.sort (fun (a, _) (b, _) -> compare a b))

let find name = registered (fun () -> Hashtbl.find_opt registry name)

(* Zero every registered metric (bench/test isolation; the registry
   keeps its entries so cells stay shared). *)
let reset_all () =
  List.iter
    (fun (_, m) ->
      match m with
      | M_counter c -> Counter.reset c
      | M_gauge g -> Gauge.reset g
      | M_histogram h -> Histogram.reset h)
    (metrics ())

(* ------------------------------------------------------------------ *)
(* Prometheus text exposition                                         *)
(* ------------------------------------------------------------------ *)

(* "server.query_seconds" -> "coral_server_query_seconds" *)
let prom_name name =
  let b = Buffer.create (String.length name + 8) in
  Buffer.add_string b "coral_";
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> Buffer.add_char b c
      | _ -> Buffer.add_char b '_')
    name;
  Buffer.contents b

let prom_float f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.9g" f

let render_histogram buf name (h : Histogram.t) =
  let n = prom_name name in
  Buffer.add_string buf (Printf.sprintf "# TYPE %s histogram\n" n);
  let counts = Histogram.bucket_counts h in
  (* cumulative buckets up to the last non-empty one, then +Inf *)
  let last =
    let hi = ref (-1) in
    Array.iteri (fun i c -> if c > 0 then hi := i) counts;
    min !hi (Histogram.nbuckets - 2)
  in
  let cum = ref 0 in
  for i = 0 to last do
    cum := !cum + counts.(i);
    Buffer.add_string buf
      (Printf.sprintf "%s_bucket{le=\"%s\"} %d\n" n
         (prom_float (float_of_int (Histogram.bucket_le_ns i) /. 1e9))
         !cum)
  done;
  Buffer.add_string buf
    (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" n (Histogram.count h));
  Buffer.add_string buf
    (Printf.sprintf "%s_sum %s\n" n (prom_float (float_of_int (Histogram.sum_ns h) /. 1e9)));
  Buffer.add_string buf (Printf.sprintf "%s_count %d\n" n (Histogram.count h))

let prometheus () =
  let buf = Buffer.create 2048 in
  List.iter
    (fun (name, m) ->
      match m with
      | M_counter c ->
        let n = prom_name name in
        Buffer.add_string buf (Printf.sprintf "# TYPE %s counter\n" n);
        Buffer.add_string buf (Printf.sprintf "%s %d\n" n (Counter.value c))
      | M_gauge g ->
        let n = prom_name name in
        Buffer.add_string buf (Printf.sprintf "# TYPE %s gauge\n" n);
        Buffer.add_string buf (Printf.sprintf "%s %d\n" n (Gauge.value g))
      | M_histogram h -> render_histogram buf name h)
    (metrics ());
  Buffer.contents buf

(* One ad-hoc sample rendered without registration — for values owned
   by some other component (a server's session table, the relation
   layer's global counters) that are cheap to read at scrape time. *)
let prometheus_sample buf ~kind name value =
  let n = prom_name name in
  Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" n kind);
  Buffer.add_string buf (Printf.sprintf "%s %d\n" n value)

let prometheus_sample_f buf ~kind name value =
  let n = prom_name name in
  Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" n kind);
  Buffer.add_string buf (Printf.sprintf "%s %s\n" n (prom_float value))

(* Labeled sample: [labels] render inside {}.  Label values are
   escaped per the exposition format (backslash, quote, newline). *)
let prom_label_escape s =
  let b = Buffer.create (String.length s + 4) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let render_labels labels =
  if labels = [] then ""
  else
    "{"
    ^ String.concat ","
        (List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (prom_label_escape v)) labels)
    ^ "}"

let prometheus_sample_labeled buf ?(typ = true) ~kind ~labels name value =
  let n = prom_name name in
  if typ then Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" n kind);
  Buffer.add_string buf (Printf.sprintf "%s%s %s\n" n (render_labels labels) (prom_float value))

(* ------------------------------------------------------------------ *)
(* Trace context                                                      *)
(* ------------------------------------------------------------------ *)

(* The per-request trace id.  A connection thread sets it when a
   request arrives (either honoring a tid= token from the wire or
   minting a fresh id) and clears it when the reply is written; any
   span or event recorded on that thread in between is stamped with
   it.  The table is keyed by thread id, so context never leaks
   between concurrent connections — but note it also does not follow
   work handed to a domain pool; callers that fan out must capture
   [current ()] before spawning. *)
module Trace = struct
  let table : (int, string) Hashtbl.t = Hashtbl.create 16
  let lock = Mutex.create ()
  let seq = Atomic.make 0

  (* ids look like "t4f2a-17": a few hex digits of process identity
     (pid + start time) plus a process-local sequence number, unique
     enough across a cluster without a real RNG. *)
  let origin =
    lazy
      (let pid = Unix.getpid () in
       Printf.sprintf "%04x" ((pid lxor (process_start_ns lsr 12)) land 0xffff))

  let fresh () =
    Printf.sprintf "t%s-%d" (Lazy.force origin) (Atomic.fetch_and_add seq 1)

  let set id =
    let tid = Thread.id (Thread.self ()) in
    Mutex.lock lock;
    Hashtbl.replace table tid id;
    Mutex.unlock lock

  let clear () =
    let tid = Thread.id (Thread.self ()) in
    Mutex.lock lock;
    Hashtbl.remove table tid;
    Mutex.unlock lock

  let current () =
    let tid = Thread.id (Thread.self ()) in
    Mutex.lock lock;
    let r = Hashtbl.find_opt table tid in
    Mutex.unlock lock;
    r

  (* [with_id id f]: run f with the trace context set (None = leave
     whatever context is already installed alone). *)
  let with_id id f =
    match id with
    | None -> f ()
    | Some id ->
      let prev = current () in
      set id;
      Fun.protect
        ~finally:(fun () -> match prev with Some p -> set p | None -> clear ())
        f

  (* A tid travels on the wire as a trailing "tid=<id>" token; only
     short ids of unsurprising characters are accepted, so a malformed
     token cannot smuggle spaces or quotes into logs. *)
  let valid_id s =
    let n = String.length s in
    n > 0 && n <= 64
    && String.for_all
         (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' -> true | _ -> false)
         s
end

(* ------------------------------------------------------------------ *)
(* Span tracing                                                       *)
(* ------------------------------------------------------------------ *)

module Span = struct
  type span = {
    sname : string;
    ts_ns : int;  (* start, wall clock *)
    dur_ns : int;
    attrs : (string * string) list;
  }

  (* A fixed ring holding the most recent completed spans.  Writers
     take a slot under a lock (spans end at phase/round/page
     granularity, so contention is negligible next to the work they
     wrap); the ring never grows, old spans are overwritten. *)
  let default_capacity = 8192
  let ring = ref (Array.make default_capacity None)
  let cursor = ref 0  (* total spans ever recorded *)
  let ring_lock = Mutex.create ()

  let set_capacity n =
    let n = max 1 n in
    Mutex.lock ring_lock;
    ring := Array.make n None;
    cursor := 0;
    Mutex.unlock ring_lock

  let clear () =
    Mutex.lock ring_lock;
    Array.fill !ring 0 (Array.length !ring) None;
    cursor := 0;
    Mutex.unlock ring_lock

  (* Every completed span is stamped with the calling thread's trace
     id (when one is installed) so cross-process trace stitching can
     find it later by tid. *)
  let record sname ts_ns dur_ns attrs =
    let attrs =
      if List.mem_assoc "tid" attrs then attrs
      else
        match Trace.current () with
        | Some id -> ("tid", id) :: attrs
        | None -> attrs
    in
    Mutex.lock ring_lock;
    let r = !ring in
    r.(!cursor mod Array.length r) <- Some { sname; ts_ns; dur_ns; attrs };
    incr cursor;
    Mutex.unlock ring_lock

  let recorded () =
    Mutex.lock ring_lock;
    let r = !ring in
    let n = Array.length r in
    let total = !cursor in
    let first = max 0 (total - n) in
    let out = ref [] in
    for i = total - 1 downto first do
      match r.(i mod n) with
      | Some s -> out := s :: !out
      | None -> ()
    done;
    Mutex.unlock ring_lock;
    !out

  let count () = !cursor

  (* [with_ name f]: run f inside a span.  Attributes are a thunk so
     building them costs nothing when tracing is off. *)
  let with_ ?attrs name f =
    if Atomic.get on then begin
      let t0 = now_ns () in
      Fun.protect
        ~finally:(fun () ->
          let attrs = match attrs with Some mk -> mk () | None -> [] in
          record name t0 (now_ns () - t0) attrs)
        f
    end
    else f ()

  let json_escape s =
    let b = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | c when Char.code c < 32 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b

  (* Chrome trace_event format (chrome://tracing, Perfetto): an array
     of complete ("ph":"X") events with microsecond timestamps. *)
  let to_chrome_json () =
    let spans = recorded () in
    let buf = Buffer.create 4096 in
    Buffer.add_string buf "[";
    List.iteri
      (fun i s ->
        if i > 0 then Buffer.add_string buf ",\n" else Buffer.add_string buf "\n";
        Buffer.add_string buf
          (Printf.sprintf
             "{\"name\": \"%s\", \"ph\": \"X\", \"pid\": 1, \"tid\": 1, \"ts\": %.3f, \"dur\": %.3f"
             (json_escape s.sname)
             (float_of_int s.ts_ns /. 1e3)
             (float_of_int s.dur_ns /. 1e3));
        if s.attrs <> [] then begin
          Buffer.add_string buf ", \"args\": {";
          List.iteri
            (fun j (k, v) ->
              if j > 0 then Buffer.add_string buf ", ";
              Buffer.add_string buf
                (Printf.sprintf "\"%s\": \"%s\"" (json_escape k) (json_escape v)))
            s.attrs;
          Buffer.add_string buf "}"
        end;
        Buffer.add_string buf "}")
      spans;
    Buffer.add_string buf "\n]\n";
    Buffer.contents buf

  (* Spans whose trace id matches [tid], oldest first — the slice a
     worker ships back for a [spans <tid>] wire request. *)
  let matching tid =
    List.filter (fun s -> List.assoc_opt "tid" s.attrs = Some tid) (recorded ())

  (* One span as a single-line JSON object; the wire format for
     [spans <tid>] replies, parsed back with [of_json]. *)
  let to_json s =
    Json.to_string
      (Json.Obj
         [ "name", Json.Str s.sname;
           "ts_ns", Json.Int s.ts_ns;
           "dur_ns", Json.Int s.dur_ns;
           "attrs", Json.Obj (List.map (fun (k, v) -> k, Json.Str v) s.attrs)
         ])

  let of_json line =
    match Json.parse line with
    | Error e -> Error e
    | Ok j -> begin
      match Json.member "name" j, Json.member "ts_ns" j, Json.member "dur_ns" j with
      | Some (Json.Str sname), Some (Json.Int ts_ns), Some (Json.Int dur_ns) ->
        let attrs =
          match Json.member "attrs" j with
          | Some (Json.Obj kvs) ->
            List.filter_map (function k, Json.Str v -> Some (k, v) | _ -> None) kvs
          | _ -> []
        in
        Ok { sname; ts_ns; dur_ns; attrs }
      | _ -> Error "span: missing name/ts_ns/dur_ns"
    end

  (* Stitched multi-process view: each (label, spans) pair becomes its
     own pid lane, named by a process_name metadata event, so a router
     plus its workers render as parallel flame rows in Perfetto /
     chrome://tracing sharing one time axis. *)
  let to_chrome_json_lanes lanes =
    let buf = Buffer.create 4096 in
    Buffer.add_string buf "[";
    let first = ref true in
    let emit line =
      if !first then (Buffer.add_string buf "\n"; first := false)
      else Buffer.add_string buf ",\n";
      Buffer.add_string buf line
    in
    List.iteri
      (fun lane (label, spans) ->
        let pid = lane + 1 in
        emit
          (Printf.sprintf
             "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": %d, \"tid\": 1, \
              \"args\": {\"name\": \"%s\"}}"
             pid (json_escape label));
        List.iter
          (fun s ->
            let b = Buffer.create 128 in
            Buffer.add_string b
              (Printf.sprintf
                 "{\"name\": \"%s\", \"ph\": \"X\", \"pid\": %d, \"tid\": 1, \
                  \"ts\": %.3f, \"dur\": %.3f"
                 (json_escape s.sname) pid
                 (float_of_int s.ts_ns /. 1e3)
                 (float_of_int s.dur_ns /. 1e3));
            if s.attrs <> [] then begin
              Buffer.add_string b ", \"args\": {";
              List.iteri
                (fun j (k, v) ->
                  if j > 0 then Buffer.add_string b ", ";
                  Buffer.add_string b
                    (Printf.sprintf "\"%s\": \"%s\"" (json_escape k) (json_escape v)))
                s.attrs;
              Buffer.add_string b "}"
            end;
            Buffer.add_string b "}";
            emit (Buffer.contents b))
          spans)
      lanes;
    Buffer.add_string buf "\n]\n";
    Buffer.contents buf
end
