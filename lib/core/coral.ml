module Term = Coral_term.Term
module Value = Coral_term.Value
module Bignum = Coral_term.Bignum
module Symbol = Coral_term.Symbol
module Bindenv = Coral_term.Bindenv
module Unify = Coral_term.Unify
module Tuple = Coral_rel.Tuple
module Relation = Coral_rel.Relation
module Scan = Coral_rel.Scan
module Index = Coral_rel.Index
module Hash_relation = Coral_rel.Hash_relation
module List_relation = Coral_rel.List_relation
module Ast = Coral_lang.Ast
module Parser = Coral_lang.Parser
module Pretty = Coral_lang.Pretty
module Optimizer = Coral_rewrite.Optimizer
module Engine = Coral_eval.Engine
module Builtin = Coral_eval.Builtin
module Persistent = Coral_storage.Persistent_relation
module Database = Coral_storage.Database

type t = Engine.t

let create ?builtins ?workers () = Engine.create ?builtins ?workers ()
let engine t = t
let of_engine e = e
let set_workers = Engine.set_workers
let workers = Engine.workers

let fact t name terms = ignore (Engine.add_fact t name terms)
let facts t name rows = List.iter (fun row -> fact t name row) rows
let relation t name arity = Engine.base_relation t (Symbol.intern name) arity
let install_relation t name rel = Engine.set_relation t (Symbol.intern name) rel
let consult_text t src = ignore (Engine.consult t src)
let consult_file t path = ignore (Engine.consult_file t path)

let define_predicate t name arity solve =
  Engine.register_foreign t { Builtin.fname = name; farity = arity; fsolve = solve }

let query t src =
  let r = Engine.query_string t src in
  List.map
    (fun row ->
      List.map2
        (fun (v : Term.var) value -> v.Term.vname, value)
        r.Engine.qvars (Array.to_list row))
    r.Engine.rows

let query_rows t src = (Engine.query_string t src).Engine.rows

let call t name args = Engine.call t (Symbol.intern name) args

let exists t src = query_rows t src <> []

let int = Term.int
let str = Term.str
let atom = Term.atom
let double = Term.double
let var = Term.var
let list_ = Term.list_of
let app name args = Term.app (Symbol.intern name) (Array.of_list args)

let define_type ~name ?compare ?hash ?parse ~print () =
  let ops = Value.make_ops ~name ?compare ?hash ?parse ~print () in
  fun payload -> Term.const (Value.opaque ops payload)

exception Cancelled = Engine.Cancelled

let with_cancel = Engine.with_cancel_check
let with_progress = Engine.with_progress
let plan_cache_stats = Engine.plan_cache_stats
let invalidate_plans = Engine.invalidate_plans

let why t src =
  match Engine.why t src with
  | Ok text -> text
  | Error e -> "error: " ^ e

let explain_analyze t src =
  match Engine.explain_analyze t src with
  | Ok text -> text
  | Error e -> "error: " ^ e

let explain t src =
  match Parser.query src with
  | Error e -> Format.asprintf "%a" Parser.pp_error e
  | Ok [ Ast.Pos a ] -> begin
    let arity = Array.length a.Ast.args in
    let adorn =
      Array.map
        (fun (arg : Term.t) -> if Term.is_ground arg then Ast.Bound else Ast.Free)
        a.Ast.args
    in
    match Engine.plan_for t ~pred:a.Ast.pred ~arity ~adorn with
    | Ok plan -> Format.asprintf "%a" Optimizer.pp_plan plan
    | Error e -> "planning error: " ^ e
  end
  | Ok _ -> "explain expects a single positive literal"
