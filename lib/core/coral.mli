(** CORAL: a deductive database system.

    This is the public face of the library — the OCaml rendering of
    CORAL's host-language interface (paper section 6), which extended
    C++ with relations, tuples, args and scan descriptors, plus embedded
    declarative CORAL code.  A {!session} owns base relations, loaded
    modules and cached evaluation state; declarative programs are
    consulted as text and queried either as text or through the typed
    helpers.

    {2 Quick start}

    {[
      let db = Coral.create () in
      Coral.consult_text db
        "edge(1, 2). edge(2, 3).
         module paths.
         export path(bf).
         path(X, Y) :- edge(X, Y).
         path(X, Y) :- edge(X, Z), path(Z, Y).
         end_module.";
      Coral.query db "path(1, Y)"
      (* -> [ [Y := 2]; [Y := 3] ] *)
    ]}

    The submodules re-export the full system for programs that need to
    reach below the facade (relation implementations, the optimizer,
    the storage manager). *)

(** {1 Re-exported system layers} *)

module Term = Coral_term.Term
module Value = Coral_term.Value
module Bignum = Coral_term.Bignum
module Symbol = Coral_term.Symbol
module Bindenv = Coral_term.Bindenv
module Unify = Coral_term.Unify
module Tuple = Coral_rel.Tuple
module Relation = Coral_rel.Relation
module Scan = Coral_rel.Scan
module Index = Coral_rel.Index
module Hash_relation = Coral_rel.Hash_relation
module List_relation = Coral_rel.List_relation
module Ast = Coral_lang.Ast
module Parser = Coral_lang.Parser
module Pretty = Coral_lang.Pretty
module Optimizer = Coral_rewrite.Optimizer
module Engine = Coral_eval.Engine
module Builtin = Coral_eval.Builtin
module Persistent = Coral_storage.Persistent_relation
module Database = Coral_storage.Database

(** {1 Sessions} *)

type t
(** A session: base relations, loaded modules, cached plans and
    save-module instances. *)

val create : ?builtins:bool -> ?workers:int -> unit -> t
(** [workers] (clamped to [1, 64], default: the [CORAL_WORKERS]
    environment variable or 1) is the domain-pool width for parallel
    semi-naive evaluation; see {!set_workers}. *)

val engine : t -> Engine.t

val of_engine : Engine.t -> t
(** Wrap an engine (e.g. a snapshot read view from {!Engine.read_view})
    in the convenience API. *)

val set_workers : t -> int -> unit
(** Set the parallel evaluation width for subsequent queries: each
    semi-naive fixpoint round is striped across a shared pool of that
    many OCaml domains, with derivations merged deterministically at
    the round barrier — answers are identical to sequential
    evaluation.  1 (the default) evaluates sequentially; modules using
    Ordered Search, foreign predicates, or non-snapshot-safe relations
    fall back to sequential evaluation automatically. *)

val workers : t -> int

(** {1 Building the database} *)

val fact : t -> string -> Term.t list -> unit
(** [fact db "edge" [Term.int 1; Term.int 2]] inserts a base fact. *)

val facts : t -> string -> Term.t list list -> unit

val relation : t -> string -> int -> Relation.t
(** The base relation for a name/arity, created on demand. *)

val install_relation : t -> string -> Relation.t -> unit
(** Use a custom relation implementation (e.g. a {!Persistent} one) as
    a base relation: extensibility of access structures, section 7.2. *)

val consult_text : t -> string -> unit
(** Load program text (facts, modules, rules).  Embedded queries are
    evaluated and discarded; use {!query} to get answers.
    @raise Engine.Engine_error on parse or load errors. *)

val consult_file : t -> string -> unit

val define_predicate :
  t -> string -> int -> (Term.t array -> Bindenv.t -> Term.t array Seq.t) -> unit
(** Define a predicate by a host function (the paper's
    [_coral_export] mechanism, section 6.2): given the argument
    pattern and its environment, produce answer rows; the engine
    unifies them with the call pattern. *)

(** {1 Queries} *)

val query : t -> string -> (string * Term.t) list list
(** Evaluate a query ("path(1, Y), Y != 3" — the leading [?-] and the
    final dot are optional); one association list of variable bindings
    per answer. *)

val query_rows : t -> string -> Term.t array list
(** Like {!query}, rows aligned with the variables' first occurrence. *)

val call : t -> string -> Term.t array -> Tuple.t Seq.t
(** Direct call on a predicate with a pattern of constants and
    variables (use {!Term.var} / {!var} for free positions). *)

val exists : t -> string -> bool
(** Does the query have at least one answer? *)

(** {1 Term construction helpers} *)

val int : int -> Term.t
val str : string -> Term.t
val atom : string -> Term.t
val double : float -> Term.t
val var : ?name:string -> int -> Term.t
val list_ : Term.t list -> Term.t
val app : string -> Term.t list -> Term.t

(** {1 Extensibility: abstract data types (paper section 7.1)} *)

val define_type :
  name:string ->
  ?compare:(exn -> exn -> int) ->
  ?hash:(exn -> int) ->
  ?parse:(string -> exn) ->
  print:(Format.formatter -> exn -> unit) ->
  unit ->
  exn -> Term.t
(** Register an abstract data type and get its value constructor.  The
    payload travels as an [exn] (OCaml's extensible type): declare
    [exception Point of point] and pass [Point p] values.  Equality,
    hashing and printing flow from the given operations; hash-consing
    ids compose with every other type automatically. *)

(** {1 Serving hooks}

    Used by the serving layer ([lib/server]) and available to any
    embedding host: per-request deadlines and prepared-plan control. *)

exception Cancelled
(** Raised out of {!query}/{!call} when the check installed by
    {!with_cancel} fires mid-evaluation. *)

val with_cancel : t -> (unit -> bool) -> (unit -> 'a) -> 'a
(** [with_cancel db check f] evaluates [f ()] with cooperative
    cancellation on [db]: evaluation polls [check] (at fixpoint round
    boundaries and, tick-based, inside long rounds) and raises
    {!Cancelled} once it returns [true].  Nests; the previous check
    and its polling budget are restored on exit.  The check is scoped
    to [db]: concurrent or interleaved evaluation on other sessions is
    unaffected. *)

val with_progress : t -> (rounds:int -> delta:int -> lanes:int array -> unit) -> (unit -> 'a) -> 'a
(** [with_progress db hook f] evaluates [f ()] with a live-progress
    hook on [db]: every fixpoint it runs reports each productive step
    (round counter, tuples inserted that step, per-lane task counts
    when parallel — [[||]] sequential).  The serving layer feeds the
    active-query registry (`ps` wire command) through this.  Nests the
    same way as {!with_cancel}. *)

val plan_cache_stats : t -> int * int
(** [(hits, misses)] of the session's query-form plan cache. *)

val invalidate_plans : t -> unit
(** Drop cached plans and save-module instances, e.g. after a bulk
    base-relation update that must be visible to prepared queries. *)

(** {1 Inspection} *)

val explain : t -> string -> string
(** The optimizer's rewritten program and decisions for a query on an
    exported predicate (the text CORAL dumped as a debugging aid). *)

val explain_analyze : t -> string -> string
(** Like {!explain}, but actually runs the query with per-rule
    profiling on: each rewritten rule is annotated with its attempted
    and successful derivations, duplicates, join tuples and time, and
    the report ends with the per-iteration delta sizes and a derivation
    count cross-check against the engine's global counters. *)

val why : t -> string -> string
(** The explanation tool (the paper's acknowledgements credit Bill
    Roth's Explanation tool): derivation trees for the answers of a
    single-literal query — each fact, the rule that first derived it,
    and recursively the body facts that rule joined. *)
